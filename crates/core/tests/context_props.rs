//! Property tests for the context machinery: the encoded chain behaves
//! like a stack, slots stay in range, and conflict bookkeeping is
//! consistent.

use lowutil_core::{extend_context, slot_of, ConflictStats, ContextStack, EMPTY_CONTEXT};
use lowutil_ir::{AllocSiteId, InstrId, MethodId};
use proptest::prelude::*;

proptest! {
    #[test]
    fn push_pop_restores_the_previous_chain(
        ops in proptest::collection::vec(
            prop_oneof![
                (0u32..100).prop_map(|s| Some(Some(AllocSiteId(s)))), // instance push
                Just(Some(None)),                                      // static push
                Just(None),                                            // pop
            ],
            0..200,
        )
    ) {
        let mut cs = ContextStack::new();
        let mut model: Vec<u64> = Vec::new();
        for op in ops {
            match op {
                Some(site) => {
                    let parent = model.last().copied().unwrap_or(EMPTY_CONTEXT);
                    let expected = match site {
                        Some(s) => extend_context(parent, s),
                        None => parent,
                    };
                    cs.push(site);
                    model.push(expected);
                    prop_assert_eq!(cs.current(), expected);
                }
                None => {
                    if model.is_empty() {
                        continue; // popping an empty stack is a caller bug
                    }
                    cs.pop();
                    model.pop();
                    prop_assert_eq!(
                        cs.current(),
                        model.last().copied().unwrap_or(EMPTY_CONTEXT)
                    );
                }
            }
            prop_assert_eq!(cs.depth(), model.len());
        }
    }

    #[test]
    fn slots_are_always_in_range(g in any::<u64>(), s in 1u32..1024) {
        prop_assert!(slot_of(g, s) < s);
    }

    #[test]
    fn conflict_ratio_is_a_valid_fraction(
        records in proptest::collection::vec((0u32..4, 0u32..8, 0u64..32), 1..200)
    ) {
        let mut cs = ConflictStats::new();
        for (instr, slot, chain) in records {
            cs.record(InstrId::new(MethodId(0), instr), slot, chain);
        }
        let avg = cs.average_cr();
        prop_assert!((0.0..=1.0).contains(&avg));
        for pc in 0..4u32 {
            if let Some(cr) = cs.cr_of(InstrId::new(MethodId(0), pc)) {
                prop_assert!((0.0..=1.0).contains(&cr));
            }
        }
        prop_assert!(cs.distinct_contexts() >= cs.num_instructions());
    }

    #[test]
    fn more_slots_never_increase_cr(
        chains in proptest::collection::vec(0u64..1000, 1..50)
    ) {
        // For one instruction: conflicts can only stay equal or shrink as
        // the slot count doubles, because h(c) = c mod s refines.
        let at = InstrId::new(MethodId(0), 0);
        let mut coarse = ConflictStats::new();
        let mut fine = ConflictStats::new();
        for &c in &chains {
            coarse.record(at, slot_of(c, 4), c);
            fine.record(at, slot_of(c, 64), c);
        }
        let cr_coarse = coarse.cr_of(at).unwrap();
        let cr_fine = fine.cr_of(at).unwrap();
        // Not a theorem for max/total CR in general, but holds for the
        // mod-based refinement on identical chain sets: a slot under
        // s=64 is a subset of some slot under s=4 when 4 | 64.
        prop_assert!(cr_fine <= cr_coarse + 1e-9, "{cr_fine} vs {cr_coarse}");
    }
}
