//! Incremental maintenance of the canonical CSR view of an
//! [`Aggregate`] — the serve daemon's steady-state absorb path.
//!
//! PR 9's daemon paid a full [`Aggregate::to_cost_graph`] rebuild plus a
//! from-scratch canonical CSR build, text render, and content hash on
//! *every* session absorb — O(whole graph) work for what is usually a
//! tiny per-session delta. [`IncrementalCsr`] keeps the canonical node
//! order, the CSR arrays, the binary snapshot's section bytes (with
//! their CRCs), the content-hash accumulators, and the canonical text
//! export alive across absorbs, and patches them from the
//! [`AbsorbDelta`] each absorb returns:
//!
//! - **Frequency-only deltas** (the steady state of a long-lived tenant:
//!   every structure the workload can build has been seen, sessions only
//!   re-weigh it) patch the CSR `freq` slots, the `FREQ` snapshot
//!   section, the per-node hashes, and the multiset content hash in
//!   O(touched nodes) — no text formatting, no re-serialization, no
//!   whole-graph hashing. The node text section is merely marked stale
//!   and re-rendered if an export is ever asked for.
//! - **Structural deltas** splice the CSR through
//!   [`CsrGraph::apply_delta`] (surviving adjacency is copied, only dirty
//!   regions merge) and re-render exactly the sections the delta touched.
//!
//! The content hash is maintainable in O(delta) because
//! [`content_hash`](crate::store::content_hash) is an order-independent
//! multiset hash over records keyed by node *identity* (never canonical
//! index): inserting a node renumbers its neighbours without changing
//! any other record's hash, and a frequency bump swaps one node-record
//! hash inside a wrapping sum.
//!
//! Everything cached is bit-identical to the from-scratch rebuild: the
//! export equals [`write_cost_graph`](crate::export::write_cost_graph) of
//! [`Aggregate::to_cost_graph`], the content hash equals
//! [`content_hash`](crate::store::content_hash) of it, and
//! [`IncrementalCsr::write_snapshot`] produces the same bytes as
//! [`write_snapshot`](crate::store::write_snapshot) — enforced by the
//! workload-sweep and property tests in `tests/incremental.rs`.
//!
//! [`IncrDirty`] reports which canonical nodes an absorb touched, so the
//! analysis layer re-runs per-seed kernels only for seeds whose bounded
//! region intersects the dirty set (see
//! [`CsrGraph::affected_seeds`]).

use crate::csr::{Bitset, CsrDelta, CsrGraph};
use crate::export::{elem_rank, write_effect_line, write_node_line, write_pointsto_line};
use crate::fx::FxHashMap;
use crate::gcost::{FieldKey, HeapEffect, TaggedSite};
use crate::graph::{NodeId, NodeKind};
use crate::shard::{AbsorbDelta, AbstractNode, Aggregate};
use crate::store::{
    combine_content_hash, crc32, edge_record_hash, effect_code, effect_record_hash,
    node_record_hash_from_prefix, node_record_prefix, pointsto_record_hash, refedge_record_hash,
    u32s_le, u64s_le, write_snapshot_sections, ContentSums, SnapshotMeta,
};
use std::io::{self, Write};

/// The canonical sort key shared with [`Aggregate::to_cost_graph`] and
/// [`crate::export::canonical_order`].
#[inline]
fn canon_key(k: &AbstractNode) -> (u32, u32, u64) {
    (k.0.method.0, k.0.pc, elem_rank(k.1))
}

// Indices into the cached snapshot-section array, in the on-disk
// `SECTION_IDS` order of `store.rs`.
const SEC_KIND: usize = 0;
const SEC_FREQ: usize = 1;
const SEC_SUCC_OFF: usize = 2;
const SEC_SUCC_ADJ: usize = 3;
const SEC_PRED_OFF: usize = 4;
const SEC_PRED_ADJ: usize = 5;
const SEC_READS: usize = 6;
const SEC_WRITES: usize = 7;
const SEC_CONSUMER: usize = 8;
const SEC_NODE_INSTR: usize = 9;
const SEC_NODE_ELEM: usize = 10;
const SEC_EFFECTS: usize = 11;
const SEC_REF_EDGES: usize = 12;
const SEC_POINTS_TO: usize = 13;

/// What one [`IncrementalCsr::apply`] changed, in final (canonical) node
/// ids — the contract between the graph layer and incremental analysis
/// state (`lowutil-analyses`' `IncrementalAnalyzer`).
#[derive(Debug, Clone)]
pub struct IncrDirty {
    /// Final ids of nodes whose frequency changed, that were inserted,
    /// or that gained an edge. Cached per-seed sums stay exact for every
    /// seed whose bounded region avoids these nodes.
    pub dirty: Bitset,
    /// When nodes were inserted: `remap[old]` is the final id of the
    /// node previously numbered `old`. `None` when the node set is
    /// unchanged.
    pub remap: Option<Vec<u32>>,
    /// Whether the node set or edge set changed (consumer reachability
    /// must be re-marked). Frequency-only absorbs leave it `false`.
    pub structural: bool,
}

/// A live, incrementally-maintained canonical view of an [`Aggregate`]:
/// CSR arrays, per-node content hashes, the binary snapshot sections,
/// and the canonical text export, all patched in O(delta)-ish work per
/// absorb instead of rebuilt from scratch.
#[derive(Debug, Clone)]
pub struct IncrementalCsr {
    /// Final id → abstract node, canonical `(method, pc, elem)` order.
    order: Vec<AbstractNode>,
    /// Abstract node → final id.
    index: FxHashMap<AbstractNode, u32>,
    csr: CsrGraph<'static>,
    node_hash: Vec<u64>,
    /// Cached FNV state over each node's immutable record part (tag,
    /// identity, kind) — a frequency bump folds 8 bytes instead of
    /// re-hashing the whole 26-byte record.
    hash_prefix: Vec<u64>,
    instr_instances: u64,
    shadow_heap_bytes: u64,
    /// Multiset content-hash accumulators (see
    /// [`content_hash`](crate::store::content_hash)).
    sums: ContentSums,
    content_hash: u64,
    /// Cached snapshot section bodies, `SECTION_IDS` order. A
    /// frequency-only absorb patches `FREQ` bytes in place; structural
    /// absorbs re-derive exactly the sections they touched.
    secs: [Vec<u8>; 14],
    /// Per-section CRC32s of `secs` — recomputed only for sections that
    /// changed, so a steady-state save never re-checksums the graph.
    crcs: [u32; 14],
    // Cached canonical text export, split at record-type boundaries.
    meta_bytes: Vec<u8>,
    node_bytes: Vec<u8>,
    edge_bytes: Vec<u8>,
    refedge_bytes: Vec<u8>,
    effect_bytes: Vec<u8>,
    pointsto_bytes: Vec<u8>,
    /// `node_bytes` is stale (frequency-only absorbs skip the render;
    /// [`export_bytes`](IncrementalCsr::export_bytes) rebuilds on read).
    node_text_dirty: bool,
}

impl IncrementalCsr {
    /// Builds the full canonical view of `agg` from scratch — the first
    /// absorb of a tenant, or a restore from snapshot. Subsequent
    /// absorbs go through [`apply`](IncrementalCsr::apply).
    pub fn new(agg: &Aggregate) -> IncrementalCsr {
        let mut order: Vec<AbstractNode> = agg.nodes_map().keys().copied().collect();
        order.sort_unstable_by_key(canon_key);
        let index: FxHashMap<AbstractNode, u32> = order
            .iter()
            .enumerate()
            .map(|(i, &k)| (k, i as u32))
            .collect();
        let n = order.len();

        let nodes = agg.nodes_map();
        let mut kind = Vec::with_capacity(n);
        let mut freq = Vec::with_capacity(n);
        let mut hashes = Vec::with_capacity(n);
        let mut prefixes = Vec::with_capacity(n);
        let mut node_sum = 0u64;
        for k in &order {
            let (kd, fq) = nodes[k];
            kind.push(kd.code());
            freq.push(fq);
            let p = node_record_prefix(k.0, k.1, kd);
            let h = node_record_hash_from_prefix(p, fq);
            node_sum = node_sum.wrapping_add(h);
            hashes.push(h);
            prefixes.push(p);
        }

        let mut edge_sum = 0u64;
        let mut fwd: Vec<(u32, u32)> = agg
            .edges_set()
            .iter()
            .map(|(a, b)| {
                edge_sum = edge_sum.wrapping_add(edge_record_hash(*a, *b));
                (index[a], index[b])
            })
            .collect();
        fwd.sort_unstable();
        let mut rev: Vec<(u32, u32)> = fwd.iter().map(|&(a, b)| (b, a)).collect();
        rev.sort_unstable();
        let (succ_off, succ_adj) = offsets_of(n, &fwd);
        let (pred_off, pred_adj) = offsets_of(n, &rev);

        let mut reads = Bitset::new(n);
        let mut writes = Bitset::new(n);
        let mut consumer = Bitset::new(n);
        for (i, &code) in kind.iter().enumerate() {
            let k = NodeKind::from_code(code).expect("kind codes are ours");
            if k.reads_heap() {
                reads.insert(i);
            }
            if k.writes_heap() {
                writes.insert(i);
            }
            if k.is_consumer() {
                consumer.insert(i);
            }
        }

        let csr = CsrGraph::from_raw_parts(
            kind.into(),
            freq.into(),
            succ_off.into(),
            succ_adj.into(),
            pred_off.into(),
            pred_adj.into(),
            reads.words().to_vec().into(),
            writes.words().to_vec().into(),
            consumer.words().to_vec().into(),
        )
        .expect("arrays built from the aggregate are structurally valid");

        let mut inc = IncrementalCsr {
            order,
            index,
            csr,
            node_hash: hashes,
            hash_prefix: prefixes,
            instr_instances: 0,
            shadow_heap_bytes: 0,
            sums: ContentSums {
                nodes: n as u64,
                edges: 0,
                node_sum,
                edge_sum,
                ref_sum: 0,
                eff_sum: 0,
                pts_sum: 0,
            },
            content_hash: 0,
            secs: Default::default(),
            crcs: [0; 14],
            meta_bytes: Vec::new(),
            node_bytes: Vec::new(),
            edge_bytes: Vec::new(),
            refedge_bytes: Vec::new(),
            effect_bytes: Vec::new(),
            pointsto_bytes: Vec::new(),
            node_text_dirty: false,
        };
        inc.sums.edges = inc.csr.num_edges() as u64;
        inc.rebuild_csr_secs();
        inc.render_node_bytes();
        inc.render_edge_bytes();
        inc.build_refedges(agg);
        inc.build_effects(agg);
        inc.build_points_to(agg);
        inc.build_node_label_secs();
        inc.refresh_all_crcs();
        inc.combine(agg);
        inc
    }

    /// Patches the view with what one [`Aggregate::absorb`] changed.
    /// `agg` must be the aggregate the delta was just absorbed into.
    /// Returns the dirty set in final node ids.
    ///
    /// Frequency-only deltas patch the CSR `freq` slots, the `FREQ`
    /// snapshot section, and the content-hash accumulators in O(touched
    /// nodes) — no formatting, no sorting, no whole-graph hashing.
    /// Structural deltas splice through [`CsrGraph::apply_delta`] and
    /// re-render exactly the sections the delta touched.
    pub fn apply(&mut self, agg: &Aggregate, delta: &AbsorbDelta) -> IncrDirty {
        if delta.is_freq_only() {
            let mut csr_delta = CsrDelta::default();
            let mut dirty = Bitset::new(self.order.len());
            csr_delta.freq_adds.reserve(delta.freq_adds.len());
            for (k, d) in &delta.freq_adds {
                let i = self.index[k];
                csr_delta.freq_adds.push((i, *d));
                dirty.insert(i as usize);
            }
            self.csr.apply_delta(&csr_delta);
            for &(i, _) in &csr_delta.freq_adds {
                let at = i as usize;
                let freq = self.csr.freq(NodeId(i));
                let h = node_record_hash_from_prefix(self.hash_prefix[at], freq);
                let old = std::mem::replace(&mut self.node_hash[at], h);
                self.sums.node_sum = self.sums.node_sum.wrapping_sub(old).wrapping_add(h);
                self.secs[SEC_FREQ][at * 8..at * 8 + 8].copy_from_slice(&freq.to_le_bytes());
            }
            self.crcs[SEC_FREQ] = crc32(&self.secs[SEC_FREQ]);
            self.node_text_dirty = true;
            self.combine(agg);
            return IncrDirty {
                dirty,
                remap: None,
                structural: false,
            };
        }

        // Structural absorb: merge the new keys into the canonical
        // order, splice the CSR, then re-render only what changed.
        let n_old = self.order.len();
        let mut new_nodes = delta.new_nodes.clone();
        new_nodes.sort_unstable_by_key(|(k, _, _)| canon_key(k));
        let n_new = n_old + new_nodes.len();

        let mut remap: Option<Vec<u32>> = None;
        let mut csr_new_nodes: Vec<(u32, NodeKind, u64)> = Vec::with_capacity(new_nodes.len());
        if !new_nodes.is_empty() {
            let mut order_new: Vec<AbstractNode> = Vec::with_capacity(n_new);
            let mut map_old: Vec<u32> = Vec::with_capacity(n_old);
            let mut old_it = self.order.iter().peekable();
            let mut new_it = new_nodes.iter().peekable();
            while order_new.len() < n_new {
                let fin = order_new.len() as u32;
                let take_new = match (old_it.peek(), new_it.peek()) {
                    (Some(o), Some((k, _, _))) => canon_key(k) < canon_key(o),
                    (None, Some(_)) => true,
                    _ => false,
                };
                if take_new {
                    let &(k, kind, freq) = new_it.next().expect("peeked");
                    csr_new_nodes.push((fin, kind, freq));
                    order_new.push(k);
                } else {
                    map_old.push(fin);
                    order_new.push(*old_it.next().expect("peeked"));
                }
            }
            debug_assert_eq!(map_old.len(), n_old);
            self.order = order_new;
            self.index = self
                .order
                .iter()
                .enumerate()
                .map(|(i, &k)| (k, i as u32))
                .collect();
            remap = Some(map_old);
        }

        let shifted = csr_new_nodes
            .first()
            .is_some_and(|f| (f.0 as usize) < n_old);
        let mut dirty = Bitset::new(n_new);
        let mut csr_delta = CsrDelta {
            freq_adds: Vec::with_capacity(delta.freq_adds.len()),
            new_nodes: csr_new_nodes,
            new_edges: Vec::with_capacity(delta.new_edges.len()),
        };
        for &(fin, _, _) in &csr_delta.new_nodes {
            dirty.insert(fin as usize);
        }
        for (k, d) in &delta.freq_adds {
            let i = self.index[k];
            csr_delta.freq_adds.push((i, *d));
            dirty.insert(i as usize);
        }
        for (a, b) in &delta.new_edges {
            // Edge records hash by endpoint identity, so new edges fold
            // into the sum without touching any surviving record.
            self.sums.edge_sum = self.sums.edge_sum.wrapping_add(edge_record_hash(*a, *b));
            let (a, b) = (self.index[a], self.index[b]);
            csr_delta.new_edges.push((a, b));
            dirty.insert(a as usize);
            dirty.insert(b as usize);
        }
        self.csr.apply_delta(&csr_delta);
        self.sums.edges = self.csr.num_edges() as u64;

        // Per-node hashes: O(V) refresh — 26 bytes of FNV per node, far
        // below any render cost; avoids tracking which slots moved.
        self.node_hash.clear();
        self.node_hash.reserve(n_new);
        self.hash_prefix.clear();
        self.hash_prefix.reserve(n_new);
        let mut node_sum = 0u64;
        for (i, k) in self.order.iter().enumerate() {
            let id = NodeId(i as u32);
            let p = node_record_prefix(k.0, k.1, self.csr.kind(id));
            let h = node_record_hash_from_prefix(p, self.csr.freq(id));
            node_sum = node_sum.wrapping_add(h);
            self.node_hash.push(h);
            self.hash_prefix.push(p);
        }
        self.sums.node_sum = node_sum;
        self.sums.nodes = n_new as u64;

        // Re-render exactly the sections this delta can have changed.
        // Structural absorbs always invalidate the CSR-derived sections
        // (adjacency spliced, frequencies bumped, bitsets regrown).
        self.rebuild_csr_secs();
        self.render_node_bytes();
        self.node_text_dirty = false;
        if !csr_delta.new_edges.is_empty() || shifted {
            self.render_edge_bytes();
        }
        if !delta.new_ref_edges.is_empty() || shifted {
            self.build_refedges(agg);
        }
        if !delta.effects_set.is_empty() || shifted {
            self.build_effects(agg);
        }
        if !delta.new_points_to.is_empty() || !delta.effects_set.is_empty() {
            self.build_points_to(agg);
        }
        if !csr_delta.new_nodes.is_empty() {
            self.build_node_label_secs();
        }
        self.refresh_all_crcs();
        self.combine(agg);

        IncrDirty {
            dirty,
            remap,
            structural: !csr_delta.new_nodes.is_empty() || !csr_delta.new_edges.is_empty(),
        }
    }

    /// The live canonical CSR.
    pub fn csr(&self) -> &CsrGraph<'static> {
        &self.csr
    }

    /// Number of canonical nodes.
    pub fn num_nodes(&self) -> usize {
        self.order.len()
    }

    /// Number of directed dependence edges.
    pub fn num_edges(&self) -> usize {
        self.csr.num_edges()
    }

    /// The maintained content hash — O(1) to read. Equals
    /// [`content_hash`](crate::store::content_hash) of
    /// [`Aggregate::to_cost_graph`].
    pub fn content_hash(&self) -> u64 {
        self.content_hash
    }

    /// Per-node content hashes in final id order (see the module docs).
    pub fn node_hashes(&self) -> &[u64] {
        &self.node_hash
    }

    /// The abstract node at final id `i`.
    pub fn node_key(&self, i: usize) -> AbstractNode {
        self.order[i]
    }

    /// The final id of an abstract node, if present.
    pub fn id_of(&self, k: &AbstractNode) -> Option<u32> {
        self.index.get(k).copied()
    }

    /// The canonical text export — byte-identical to
    /// [`write_cost_graph`](crate::export::write_cost_graph) of the
    /// materialized aggregate. The node section is re-rendered here when
    /// frequency-only absorbs left it stale; everything else is cached.
    pub fn export_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(
            self.meta_bytes.len()
                + self.node_bytes.len()
                + self.edge_bytes.len()
                + self.refedge_bytes.len()
                + self.effect_bytes.len()
                + self.pointsto_bytes.len(),
        );
        out.extend_from_slice(&self.meta_bytes);
        if self.node_text_dirty {
            self.write_node_section(&mut out);
        } else {
            out.extend_from_slice(&self.node_bytes);
        }
        out.extend_from_slice(&self.edge_bytes);
        out.extend_from_slice(&self.refedge_bytes);
        out.extend_from_slice(&self.effect_bytes);
        out.extend_from_slice(&self.pointsto_bytes);
        out
    }

    /// Serializes the live view as snapshot format v1 — byte-identical
    /// to [`write_snapshot`](crate::store::write_snapshot) of the
    /// materialized aggregate, without materializing it: all fourteen
    /// section bodies and their CRCs are served from the cache.
    ///
    /// # Errors
    /// Propagates I/O errors from the writer.
    pub fn write_snapshot<W: Write>(&self, total_instructions: u64, w: W) -> io::Result<()> {
        write_snapshot_sections(
            &SnapshotMeta {
                content_hash: self.content_hash,
                nodes: self.order.len() as u64,
                edges: self.csr.num_edges() as u64,
                instr_instances: self.instr_instances,
                shadow_heap_bytes: self.shadow_heap_bytes,
                total_instructions,
            },
            self.secs.each_ref().map(Vec::as_slice),
            Some(&self.crcs),
            w,
        )
    }

    /// Re-derives the nine CSR-mirroring snapshot sections from the live
    /// arrays. Structural path only; frequency-only absorbs patch
    /// `FREQ` bytes in place instead.
    fn rebuild_csr_secs(&mut self) {
        self.secs[SEC_KIND] = self.csr.kind_codes().to_vec();
        self.secs[SEC_FREQ] = u64s_le(self.csr.freqs());
        self.secs[SEC_SUCC_OFF] = u32s_le(self.csr.succ_offsets());
        self.secs[SEC_SUCC_ADJ] = u32s_le(self.csr.succ_targets());
        self.secs[SEC_PRED_OFF] = u32s_le(self.csr.pred_offsets());
        self.secs[SEC_PRED_ADJ] = u32s_le(self.csr.pred_targets());
        self.secs[SEC_READS] = u64s_le(self.csr.reads_heap_words());
        self.secs[SEC_WRITES] = u64s_le(self.csr.writes_heap_words());
        self.secs[SEC_CONSUMER] = u64s_le(self.csr.consumer_words());
    }

    fn refresh_all_crcs(&mut self) {
        for (crc, sec) in self.crcs.iter_mut().zip(&self.secs) {
            *crc = crc32(sec);
        }
    }

    fn write_node_section(&self, out: &mut Vec<u8>) {
        for (i, k) in self.order.iter().enumerate() {
            let id = NodeId(i as u32);
            write_node_line(
                &mut *out,
                i as u32,
                k.0,
                k.1,
                self.csr.kind(id),
                self.csr.freq(id),
            )
            .expect("writing to a Vec cannot fail");
        }
    }

    fn render_node_bytes(&mut self) {
        let mut out = std::mem::take(&mut self.node_bytes);
        out.clear();
        self.write_node_section(&mut out);
        self.node_bytes = out;
    }

    fn render_edge_bytes(&mut self) {
        let mut out = std::mem::take(&mut self.edge_bytes);
        out.clear();
        let offs = self.csr.succ_offsets();
        let adj = self.csr.succ_targets();
        // Canonical adjacency is ascending per node, so per-node
        // iteration equals the globally sorted edge list of the text
        // export.
        for a in 0..self.order.len() {
            for &b in &adj[offs[a] as usize..offs[a + 1] as usize] {
                writeln!(&mut out, "edge {a} {b}").expect("writing to a Vec cannot fail");
            }
        }
        self.edge_bytes = out;
    }

    fn build_refedges(&mut self, agg: &Aggregate) {
        let mut out = std::mem::take(&mut self.refedge_bytes);
        out.clear();
        let mut ref_sum = 0u64;
        let mut pairs: Vec<(u32, u32)> = agg
            .ref_edges_set()
            .iter()
            .map(|(a, b)| {
                ref_sum = ref_sum.wrapping_add(refedge_record_hash(*a, *b));
                (self.index[a], self.index[b])
            })
            .collect();
        pairs.sort_unstable();
        for (s, a) in &pairs {
            writeln!(&mut out, "refedge {s} {a}").expect("writing to a Vec cannot fail");
        }
        self.refedge_bytes = out;
        self.sums.ref_sum = ref_sum;
        let flat: Vec<u32> = pairs.into_iter().flat_map(|(a, b)| [a, b]).collect();
        self.secs[SEC_REF_EDGES] = u32s_le(&flat);
    }

    fn build_effects(&mut self, agg: &Aggregate) {
        let mut out = std::mem::take(&mut self.effect_bytes);
        out.clear();
        let effects = agg.effects_map();
        let mut eff_sum = 0u64;
        let mut recs: Vec<u32> = Vec::new();
        for (i, k) in self.order.iter().enumerate() {
            if let Some(e) = effects.get(k) {
                write_effect_line(&mut out, i as u32, e).expect("writing to a Vec cannot fail");
                eff_sum = eff_sum.wrapping_add(effect_record_hash(*k, e));
                let (tag, a, b, c) = effect_code(e);
                recs.extend_from_slice(&[i as u32, tag, a, b, c]);
            }
        }
        self.effect_bytes = out;
        self.sums.eff_sum = eff_sum;
        self.secs[SEC_EFFECTS] = u32s_le(&recs);
    }

    fn build_points_to(&mut self, agg: &Aggregate) {
        let mut out = std::mem::take(&mut self.pointsto_bytes);
        out.clear();
        let mut pts_sum = 0u64;
        let mut recs: Vec<u32> = Vec::new();
        for_each_points_to(agg, |site, field, target| {
            write_pointsto_line(&mut out, site, field, target)
                .expect("writing to a Vec cannot fail");
            pts_sum = pts_sum.wrapping_add(pointsto_record_hash(site, field, target));
            recs.extend_from_slice(&[
                site.site.0,
                site.slot,
                crate::store::field_code(field),
                target.site.0,
                target.slot,
            ]);
        });
        self.pointsto_bytes = out;
        self.sums.pts_sum = pts_sum;
        self.secs[SEC_POINTS_TO] = u32s_le(&recs);
    }

    fn build_node_label_secs(&mut self) {
        let n = self.order.len();
        let mut node_instr = Vec::with_capacity(2 * n);
        let mut node_elem = Vec::with_capacity(n);
        for k in &self.order {
            node_instr.push(k.0.method.0);
            node_instr.push(k.0.pc);
            node_elem.push(elem_rank(k.1));
        }
        self.secs[SEC_NODE_INSTR] = u32s_le(&node_instr);
        self.secs[SEC_NODE_ELEM] = u64s_le(&node_elem);
    }

    /// Refreshes the `meta` line and scalar totals from the aggregate
    /// and folds the accumulators into the content hash — O(1) work
    /// beyond the 34-byte meta render.
    fn combine(&mut self, agg: &Aggregate) {
        self.instr_instances = agg.instr_instances();
        self.shadow_heap_bytes = agg.shadow_heap_bytes() as u64;
        let mut meta = std::mem::take(&mut self.meta_bytes);
        meta.clear();
        writeln!(&mut meta, "gcost 1").expect("writing to a Vec cannot fail");
        writeln!(
            &mut meta,
            "meta {} {}",
            self.instr_instances, self.shadow_heap_bytes
        )
        .expect("writing to a Vec cannot fail");
        self.meta_bytes = meta;
        self.content_hash =
            combine_content_hash(self.instr_instances, self.shadow_heap_bytes, &self.sums);
    }
}

/// Builds a CSR offset/adjacency pair from a sorted edge list.
fn offsets_of(n: usize, edges: &[(u32, u32)]) -> (Vec<u32>, Vec<u32>) {
    let mut off = Vec::with_capacity(n + 1);
    let mut adj = Vec::with_capacity(edges.len());
    off.push(0u32);
    let mut at = 0usize;
    for i in 0..n as u32 {
        while at < edges.len() && edges[at].0 == i {
            adj.push(edges[at].1);
            at += 1;
        }
        off.push(adj.len() as u32);
    }
    debug_assert_eq!(at, edges.len(), "edge sources in range");
    (off, adj)
}

/// Iterates the points-to records in the canonical order of the text
/// export and snapshot store: alloc sites sorted, fields of each site
/// (derived from `Store`/`Load` effects — mirroring
/// `CostGraph::fields_of`, which silently skips points-to keys that no
/// surviving effect mentions) sorted and deduplicated, targets sorted.
fn for_each_points_to(agg: &Aggregate, mut f: impl FnMut(TaggedSite, FieldKey, TaggedSite)) {
    let effects = agg.effects_map();
    let mut sites: Vec<TaggedSite> = effects
        .values()
        .filter_map(|e| match e {
            HeapEffect::Alloc { site } => Some(*site),
            _ => None,
        })
        .collect();
    sites.sort_unstable();
    sites.dedup();

    let mut fields_by_site: FxHashMap<TaggedSite, Vec<FieldKey>> = FxHashMap::default();
    for e in effects.values() {
        match e {
            HeapEffect::Store { site, field } | HeapEffect::Load { site, field } => {
                fields_by_site.entry(*site).or_default().push(*field);
            }
            _ => {}
        }
    }
    for fields in fields_by_site.values_mut() {
        fields.sort_unstable();
        fields.dedup();
    }

    let points_to = agg.points_to_map();
    for site in sites {
        let Some(fields) = fields_by_site.get(&site) else {
            continue;
        };
        for &field in fields {
            let Some(targets) = points_to.get(&(site, field)) else {
                continue;
            };
            let mut targets: Vec<TaggedSite> = targets.iter().copied().collect();
            targets.sort_unstable();
            for t in targets {
                f(site, field, t);
            }
        }
    }
}
