//! Flat CSR snapshot of a dependence graph plus bitset traversal kernels
//! — the batch-analysis substrate.
//!
//! The analysis phase of the tool asks thousands of slice queries against
//! one *finished*, read-only graph (an HRAC per store node, an HRAB per
//! load node, a consumer-reachability flag per read; Definitions 5 and 6).
//! The paper's abstract domain bounds that graph to `|I| × |D|` nodes —
//! small and dense — so the pointer-chasing `Vec<Vec<NodeId>>` adjacency
//! and `HashSet<NodeId>` visited sets of the construction-side
//! [`DepGraph`] are the wrong shape for it.
//! [`CsrGraph`] snapshots a finished graph into flat offset/edge arrays
//! (both directions) with frequency and kind side arrays; traversals run
//! with a reusable dense `u64`-word visited bitset and an explicit stack,
//! and fuse the frequency sum of Definition 4 into the visit loop.
//!
//! [`CsrGraph::mark_consumer_reach`] additionally replaces the per-read
//! forward BFS of `reaches_consumer` with a *single* reverse pass from
//! every consumer node: one O(V+E) sweep computes, for every node at
//! once, whether its value reaches a predicate or native consumer without
//! crossing a heap write.

use crate::graph::{DepGraph, NodeId, NodeKind};
use std::borrow::Cow;
use std::hash::Hash;

/// A dense bitset over `u64` words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitset {
    words: Vec<u64>,
}

impl Bitset {
    /// Creates an empty bitset able to hold `bits` bits.
    pub fn new(bits: usize) -> Self {
        Bitset {
            words: vec![0; bits.div_ceil(64)],
        }
    }

    /// Wraps an existing word vector (64 bits per word, bit `i` at word
    /// `i / 64`, bit `i % 64`).
    pub fn from_words(words: Vec<u64>) -> Self {
        Bitset { words }
    }

    /// The backing words.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Sets bit `i`; returns `true` when the bit was previously clear.
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        let (w, b) = (i / 64, 1u64 << (i % 64));
        let fresh = self.words[w] & b == 0;
        self.words[w] |= b;
        fresh
    }

    /// Tests bit `i`.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Clears bit `i`.
    #[inline]
    pub fn remove(&mut self, i: usize) {
        self.words[i / 64] &= !(1 << (i % 64));
    }

    /// Number of set bits — one `count_ones` per word, no per-bit work.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The backing word at index `w` (64 bits per word).
    #[inline]
    fn word(&self, w: usize) -> u64 {
        self.words[w]
    }

    /// Calls `f` with the index of every set bit, in increasing order.
    /// Word-parallel sweep: zero words cost one load and one test; set
    /// bits are extracted with `trailing_zeros` and a clear-lowest-bit
    /// step, so the cost is O(words + set bits), never O(bits).
    #[inline]
    pub fn for_each_set(&self, mut f: impl FnMut(usize)) {
        for (w, &word) in self.words.iter().enumerate() {
            let mut rest = word;
            while rest != 0 {
                f(w * 64 + rest.trailing_zeros() as usize);
                rest &= rest - 1;
            }
        }
    }
}

/// Reusable traversal state: a dense visited bitset, an explicit stack,
/// and the list of touched *words* so a finished traversal resets (and
/// its fused frequency sum sweeps) word-at-a-time in O(|slice|/64 +
/// |slice|), not O(V). One scratch serves any number of sequential
/// queries against graphs of at most the constructed size; per-seed
/// batch analysis gives each worker thread its own.
#[derive(Debug)]
pub struct TraversalScratch {
    visited: Bitset,
    stack: Vec<u32>,
    /// Indices of the visited words the current traversal made nonzero.
    /// Invariant between traversals: every word of `visited` is zero, so
    /// "word is nonzero" ⇔ "word is already listed here".
    touched_words: Vec<u32>,
}

impl TraversalScratch {
    /// Creates scratch for graphs of up to `nodes` nodes.
    pub fn new(nodes: usize) -> Self {
        TraversalScratch {
            visited: Bitset::new(nodes),
            stack: Vec::new(),
            touched_words: Vec::new(),
        }
    }

    /// Creates scratch sized for `csr`.
    pub fn for_graph(csr: &CsrGraph<'_>) -> Self {
        Self::new(csr.num_nodes())
    }

    /// Zeroes only the words the last traversal touched.
    #[inline]
    fn reset(&mut self) {
        for &w in &self.touched_words {
            self.visited.words[w as usize] = 0;
        }
        self.touched_words.clear();
        self.stack.clear();
    }

    #[inline]
    fn visit(&mut self, n: u32) -> bool {
        let w = (n / 64) as usize;
        let bit = 1u64 << (n % 64);
        let word = self.visited.words[w];
        if word & bit != 0 {
            return false;
        }
        if word == 0 {
            self.touched_words.push(w as u32);
        }
        self.visited.words[w] = word | bit;
        true
    }
}

/// Tests bit `i` of a raw bitset word slice.
#[inline]
fn word_bit(words: &[u64], i: usize) -> bool {
    words[i / 64] & (1 << (i % 64)) != 0
}

/// A structural patch against a canonical [`CsrGraph`], expressed in the
/// *final* node numbering (after any insertions). Produced by
/// [`crate::incr::IncrementalCsr`] from an
/// [`AbsorbDelta`](crate::shard::AbsorbDelta) and consumed by
/// [`CsrGraph::apply_delta`].
#[derive(Debug, Default, Clone)]
pub struct CsrDelta {
    /// Frequency increments on surviving nodes, by final id.
    pub freq_adds: Vec<(u32, u64)>,
    /// Inserted nodes as `(final id, kind, initial frequency)`, sorted
    /// ascending by id. Ids name positions in the *final* numbering, so
    /// surviving old nodes fill the remaining positions in order.
    pub new_nodes: Vec<(u32, NodeKind, u64)>,
    /// Added edges in the final numbering. Must not duplicate existing
    /// edges.
    pub new_edges: Vec<(u32, u32)>,
}

impl CsrDelta {
    /// True when the patch only bumps frequencies: node set, edges, and
    /// boundary bitsets are untouched, so [`CsrGraph::apply_delta`] runs
    /// in O(|freq_adds|).
    pub fn is_freq_only(&self) -> bool {
        self.new_nodes.is_empty() && self.new_edges.is_empty()
    }
}

/// An immutable compressed-sparse-row snapshot of a finished dependence
/// graph: flat predecessor/successor adjacency plus per-node frequency
/// and kind side arrays. Node ids coincide with the source graph's
/// [`NodeId`] indices.
///
/// Every array is `Cow`: a graph built in memory owns its arrays
/// (`CsrGraph<'static>`), while one loaded from an on-disk snapshot
/// ([`crate::store`]) borrows them zero-copy from the mapped file bytes.
#[derive(Debug, Clone)]
pub struct CsrGraph<'a> {
    /// Per-node [`NodeKind::code`] bytes.
    kind: Cow<'a, [u8]>,
    freq: Cow<'a, [u64]>,
    succ_off: Cow<'a, [u32]>,
    succ_adj: Cow<'a, [u32]>,
    pred_off: Cow<'a, [u32]>,
    pred_adj: Cow<'a, [u32]>,
    /// Bit `n` set ⇔ `kind[n].reads_heap()` — the backward-hop boundary,
    /// precomputed so the traversal's crossing test is one load + mask
    /// on a dense side array instead of a kind decode per edge.
    reads_heap: Cow<'a, [u64]>,
    /// Bit `n` set ⇔ `kind[n].writes_heap()` — the forward-hop boundary.
    writes_heap: Cow<'a, [u64]>,
    /// Bit `n` set ⇔ `kind[n].is_consumer()` — the seed set of
    /// [`mark_consumer_reach`](CsrGraph::mark_consumer_reach), swept
    /// word-parallel instead of re-deriving it from `kind`.
    consumer: Cow<'a, [u64]>,
}

impl CsrGraph<'static> {
    /// Snapshots `g`. Adjacency lists keep the source graph's edge order,
    /// so traversal results are deterministic however the snapshot is
    /// consumed.
    pub fn build<D: Clone + Eq + Hash>(g: &DepGraph<D>) -> CsrGraph<'static> {
        Self::build_inner(g, None)
    }

    /// Snapshots `g` with its nodes permuted into `order` (`order[new]`
    /// is the old id) and each adjacency list sorted ascending. This is
    /// the *canonical* CSR form the on-disk store serializes: it depends
    /// only on graph content, never on construction order, so saving the
    /// same abstract graph twice produces identical bytes. Traversal
    /// sums are order-independent, so analyses agree with [`build`].
    ///
    /// [`build`]: CsrGraph::build
    pub fn build_ordered<D: Clone + Eq + Hash>(
        g: &DepGraph<D>,
        order: &[NodeId],
    ) -> CsrGraph<'static> {
        assert_eq!(order.len(), g.num_nodes(), "order must permute all nodes");
        Self::build_inner(g, Some(order))
    }

    fn build_inner<D: Clone + Eq + Hash>(
        g: &DepGraph<D>,
        order: Option<&[NodeId]>,
    ) -> CsrGraph<'static> {
        let n = g.num_nodes();
        debug_assert!(n <= u32::MAX as usize, "node count exceeds CSR index width");
        // old id -> new id (identity when no permutation given).
        let canon: Vec<u32> = match order {
            Some(order) => {
                let mut canon = vec![0u32; n];
                for (new, &old) in order.iter().enumerate() {
                    canon[old.index()] = new as u32;
                }
                canon
            }
            None => (0..n as u32).collect(),
        };
        let old_of = |new: usize| match order {
            Some(order) => order[new],
            None => NodeId(new as u32),
        };
        let mut kind = Vec::with_capacity(n);
        let mut freq = Vec::with_capacity(n);
        let mut reads_heap = Bitset::new(n);
        let mut writes_heap = Bitset::new(n);
        let mut consumer = Bitset::new(n);
        for i in 0..n {
            let node = g.node(old_of(i));
            kind.push(node.kind.code());
            freq.push(node.freq);
            if node.kind.reads_heap() {
                reads_heap.insert(i);
            }
            if node.kind.writes_heap() {
                writes_heap.insert(i);
            }
            if node.kind.is_consumer() {
                consumer.insert(i);
            }
        }
        let mut succ_off = Vec::with_capacity(n + 1);
        let mut succ_adj = Vec::with_capacity(g.num_edges());
        let mut pred_off = Vec::with_capacity(n + 1);
        let mut pred_adj = Vec::with_capacity(g.num_edges());
        succ_off.push(0);
        pred_off.push(0);
        for i in 0..n {
            let old = old_of(i);
            let start = succ_adj.len();
            succ_adj.extend(g.succs(old).iter().map(|m| canon[m.index()]));
            if order.is_some() {
                succ_adj[start..].sort_unstable();
            }
            succ_off.push(succ_adj.len() as u32);
            let start = pred_adj.len();
            pred_adj.extend(g.preds(old).iter().map(|m| canon[m.index()]));
            if order.is_some() {
                pred_adj[start..].sort_unstable();
            }
            pred_off.push(pred_adj.len() as u32);
        }
        CsrGraph {
            kind: Cow::Owned(kind),
            freq: Cow::Owned(freq),
            succ_off: Cow::Owned(succ_off),
            succ_adj: Cow::Owned(succ_adj),
            pred_off: Cow::Owned(pred_off),
            pred_adj: Cow::Owned(pred_adj),
            reads_heap: Cow::Owned(reads_heap.words),
            writes_heap: Cow::Owned(writes_heap.words),
            consumer: Cow::Owned(consumer.words),
        }
    }
}

impl<'a> CsrGraph<'a> {
    /// Assembles a graph from raw (possibly borrowed) arrays, validating
    /// every structural invariant before anything downstream indexes
    /// with them: kind bytes decode, offset arrays are monotone and
    /// bracket their adjacency arrays, adjacency targets are in range,
    /// and the three boundary bitsets agree bit-for-bit with the kind
    /// array. Malformed input is rejected with a description, never a
    /// panic — this is the trust boundary for on-disk snapshots.
    #[allow(clippy::too_many_arguments)]
    pub fn from_raw_parts(
        kind: Cow<'a, [u8]>,
        freq: Cow<'a, [u64]>,
        succ_off: Cow<'a, [u32]>,
        succ_adj: Cow<'a, [u32]>,
        pred_off: Cow<'a, [u32]>,
        pred_adj: Cow<'a, [u32]>,
        reads_heap: Cow<'a, [u64]>,
        writes_heap: Cow<'a, [u64]>,
        consumer: Cow<'a, [u64]>,
    ) -> Result<CsrGraph<'a>, String> {
        let n = kind.len();
        if n > u32::MAX as usize {
            return Err("node count exceeds CSR index width".into());
        }
        if freq.len() != n {
            return Err(format!("freq length {} != node count {n}", freq.len()));
        }
        for (name, off, adj) in [
            ("succ", &succ_off, &succ_adj),
            ("pred", &pred_off, &pred_adj),
        ] {
            if off.len() != n + 1 {
                return Err(format!("{name} offsets length {} != {}", off.len(), n + 1));
            }
            if off[0] != 0 {
                return Err(format!("{name} offsets do not start at 0"));
            }
            if off.windows(2).any(|w| w[0] > w[1]) {
                return Err(format!("{name} offsets not monotone"));
            }
            if off[n] as usize != adj.len() {
                return Err(format!(
                    "{name} offsets end at {} but adjacency has {} entries",
                    off[n],
                    adj.len()
                ));
            }
            if adj.iter().any(|&m| m as usize >= n) {
                return Err(format!("{name} adjacency target out of range"));
            }
        }
        if succ_adj.len() != pred_adj.len() {
            return Err(format!(
                "edge count mismatch: {} forward vs {} reverse",
                succ_adj.len(),
                pred_adj.len()
            ));
        }
        let words = n.div_ceil(64);
        for (name, bits) in [
            ("reads_heap", &reads_heap),
            ("writes_heap", &writes_heap),
            ("consumer", &consumer),
        ] {
            if bits.len() != words {
                return Err(format!("{name} bitset length {} != {words}", bits.len()));
            }
        }
        for (i, &code) in kind.iter().enumerate() {
            let k = NodeKind::from_code(code)
                .ok_or_else(|| format!("node {i}: unknown kind code {code}"))?;
            if word_bit(&reads_heap, i) != k.reads_heap()
                || word_bit(&writes_heap, i) != k.writes_heap()
                || word_bit(&consumer, i) != k.is_consumer()
            {
                return Err(format!("node {i}: boundary bitsets disagree with kind"));
            }
        }
        // Tail bits beyond `n` must be clear, or word-parallel sweeps
        // would visit ghost nodes.
        if !n.is_multiple_of(64) && words > 0 {
            let mask = !0u64 << (n % 64);
            for bits in [&reads_heap, &writes_heap, &consumer] {
                if bits[words - 1] & mask != 0 {
                    return Err("bitset has bits set past the node count".into());
                }
            }
        }
        Ok(CsrGraph {
            kind,
            freq,
            succ_off,
            succ_adj,
            pred_off,
            pred_adj,
            reads_heap,
            writes_heap,
            consumer,
        })
    }

    /// Detaches the graph from any borrowed storage.
    pub fn into_owned(self) -> CsrGraph<'static> {
        CsrGraph {
            kind: Cow::Owned(self.kind.into_owned()),
            freq: Cow::Owned(self.freq.into_owned()),
            succ_off: Cow::Owned(self.succ_off.into_owned()),
            succ_adj: Cow::Owned(self.succ_adj.into_owned()),
            pred_off: Cow::Owned(self.pred_off.into_owned()),
            pred_adj: Cow::Owned(self.pred_adj.into_owned()),
            reads_heap: Cow::Owned(self.reads_heap.into_owned()),
            writes_heap: Cow::Owned(self.writes_heap.into_owned()),
            consumer: Cow::Owned(self.consumer.into_owned()),
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.kind.len()
    }

    /// Number of (directed) edges.
    pub fn num_edges(&self) -> usize {
        self.succ_adj.len()
    }

    /// A node's execution frequency.
    #[inline]
    pub fn freq(&self, n: NodeId) -> u64 {
        self.freq[n.index()]
    }

    /// A node's kind decoration.
    #[inline]
    pub fn kind(&self, n: NodeId) -> NodeKind {
        NodeKind::from_code(self.kind[n.index()]).expect("kind codes validated at construction")
    }

    /// Per-node kind codes ([`NodeKind::code`]), for serialization.
    pub fn kind_codes(&self) -> &[u8] {
        &self.kind
    }

    /// Per-node frequencies, for serialization.
    pub fn freqs(&self) -> &[u64] {
        &self.freq
    }

    /// Forward (successor) offset array, `num_nodes() + 1` entries.
    pub fn succ_offsets(&self) -> &[u32] {
        &self.succ_off
    }

    /// Forward adjacency targets.
    pub fn succ_targets(&self) -> &[u32] {
        &self.succ_adj
    }

    /// Reverse (predecessor) offset array, `num_nodes() + 1` entries.
    pub fn pred_offsets(&self) -> &[u32] {
        &self.pred_off
    }

    /// Reverse adjacency targets.
    pub fn pred_targets(&self) -> &[u32] {
        &self.pred_adj
    }

    /// Backing words of the heap-read boundary bitset.
    pub fn reads_heap_words(&self) -> &[u64] {
        &self.reads_heap
    }

    /// Backing words of the heap-write boundary bitset.
    pub fn writes_heap_words(&self) -> &[u64] {
        &self.writes_heap
    }

    /// Backing words of the consumer bitset.
    pub fn consumer_words(&self) -> &[u64] {
        &self.consumer
    }

    #[inline]
    fn succs(&self, n: u32) -> &[u32] {
        &self.succ_adj[self.succ_off[n as usize] as usize..self.succ_off[n as usize + 1] as usize]
    }

    #[inline]
    fn preds(&self, n: u32) -> &[u32] {
        &self.pred_adj[self.pred_off[n as usize] as usize..self.pred_off[n as usize + 1] as usize]
    }

    /// Heap-relative abstract cost of `seed` (Definition 5): the
    /// frequency sum over the nodes that reach it without crossing a
    /// heap-reading node, computed with the bitset kernel and the sum
    /// fused into the visit loop. Equals
    /// `freq_sum(heap_bounded_backward(seed))` on the source graph.
    pub fn heap_bounded_backward_sum(&self, s: &mut TraversalScratch, seed: NodeId) -> u64 {
        self.bounded_sum(s, seed, false)
    }

    /// Heap-relative abstract benefit of `seed` (Definition 6): the
    /// frequency sum over the nodes it reaches without crossing a
    /// heap-writing node. Equals `freq_sum(heap_bounded_forward(seed))`.
    pub fn heap_bounded_forward_sum(&self, s: &mut TraversalScratch, seed: NodeId) -> u64 {
        self.bounded_sum(s, seed, true)
    }

    /// The shared HRAC/HRAB kernel: mark the bounded slice with the
    /// bitset DFS, then sum frequencies in a word-parallel mask sweep
    /// over the touched visited words. Splitting the sum out of the
    /// visit loop keeps the DFS free of a loop-carried add and turns
    /// the sum into dense sequential reads of the `freq` side array,
    /// 64 candidates per word test.
    fn bounded_sum(&self, s: &mut TraversalScratch, seed: NodeId, forward: bool) -> u64 {
        let seed = seed.0;
        // The hop boundary: heap reads bound the backward traversal,
        // heap writes the forward one.
        let boundary = if forward {
            &self.writes_heap
        } else {
            &self.reads_heap
        };
        s.visit(seed);
        s.stack.push(seed);
        while let Some(n) = s.stack.pop() {
            let neighbours = if forward {
                self.succs(n)
            } else {
                self.preds(n)
            };
            for &m in neighbours {
                if word_bit(boundary, m as usize) {
                    continue;
                }
                if s.visit(m) {
                    s.stack.push(m);
                }
            }
        }
        let mut sum = 0u64;
        for &w in &s.touched_words {
            let base = w as usize * 64;
            let mut rest = s.visited.word(w as usize);
            while rest != 0 {
                sum += self.freq[base + rest.trailing_zeros() as usize];
                rest &= rest - 1;
            }
        }
        s.reset();
        sum
    }

    /// One reverse pass from every consumer node, marking for each node
    /// whether its value reaches a predicate or native consumer without
    /// crossing a heap write — bit `n` of the result equals
    /// `heap_bounded_forward(n)` containing a consumer. O(V+E) total,
    /// replacing one forward BFS per queried node.
    ///
    /// The propagation rule mirrors Definition 6 in reverse: a marked
    /// node extends the mark to its predecessors only if it does not
    /// itself write the heap (a path through it would cross that write);
    /// heap-writing nodes can be marked — their *own* hop starts after
    /// the write — but are never traversed through.
    pub fn mark_consumer_reach(&self) -> Bitset {
        let n = self.num_nodes();
        let mut marked = Bitset::from_words(self.consumer.to_vec());
        let mut stack: Vec<u32> = Vec::new();
        // Seed from the precomputed consumer bitset: a word-parallel
        // sweep instead of a kind decode per node.
        marked.for_each_set(|i| stack.push(i as u32));
        while let Some(m) = stack.pop() {
            if word_bit(&self.writes_heap, m as usize) {
                continue;
            }
            for &p in self.preds(m) {
                if marked.insert(p as usize) {
                    stack.push(p);
                }
            }
        }
        debug_assert_eq!(marked.words.len(), n.div_ceil(64));
        marked
    }

    /// Patches this graph in place so it equals the canonical
    /// from-scratch build of the post-delta graph
    /// ([`build_ordered`](CsrGraph::build_ordered) with ascending
    /// adjacency), without re-sorting or re-hashing anything.
    ///
    /// Frequency-only deltas touch exactly the incremented slots —
    /// O(|delta|). Structural deltas splice: surviving nodes keep their
    /// adjacency bytes (remapped through the monotone id shift when
    /// nodes are inserted), only *dirty regions* — nodes that gained an
    /// edge — merge in their additions, and the boundary bitsets are
    /// rebuilt only when ids shift (edge-only deltas leave them
    /// untouched).
    ///
    /// Requires canonical (ascending) adjacency; `new_edges` must be in
    /// the final numbering and free of duplicates against the existing
    /// edge set.
    pub fn apply_delta(&mut self, delta: &CsrDelta) {
        if delta.is_freq_only() {
            let freq = self.freq.to_mut();
            for &(i, d) in &delta.freq_adds {
                freq[i as usize] += d;
            }
            return;
        }
        let n_old = self.num_nodes();
        let n_new = n_old + delta.new_nodes.len();
        debug_assert!(
            delta.new_nodes.windows(2).all(|w| w[0].0 < w[1].0)
                && delta
                    .new_nodes
                    .last()
                    .is_none_or(|l| (l.0 as usize) < n_new),
            "new node ids must be ascending final positions"
        );

        // Final position of every surviving old node, and the inverse:
        // which old node (if any) lands at each final position.
        let mut remap = Vec::with_capacity(n_old);
        let mut old_of = vec![u32::MAX; n_new];
        {
            let mut nn = delta.new_nodes.iter().peekable();
            for fin in 0..n_new as u32 {
                if nn.peek().is_some_and(|&&(id, _, _)| id == fin) {
                    nn.next();
                } else {
                    old_of[fin as usize] = remap.len() as u32;
                    remap.push(fin);
                }
            }
        }
        debug_assert_eq!(remap.len(), n_old);
        let shifted = delta
            .new_nodes
            .first()
            .is_some_and(|f| (f.0 as usize) < n_old);

        // Side arrays: interleave surviving values with insertions, then
        // apply the frequency increments at final ids.
        if !delta.new_nodes.is_empty() {
            let mut kind = Vec::with_capacity(n_new);
            let mut freq = Vec::with_capacity(n_new);
            let mut nn = delta.new_nodes.iter();
            let mut next_new = nn.next();
            for (fin, &old) in old_of.iter().enumerate() {
                if let Some(&(id, k, f)) = next_new {
                    if id as usize == fin {
                        kind.push(k.code());
                        freq.push(f);
                        next_new = nn.next();
                        continue;
                    }
                }
                kind.push(self.kind[old as usize]);
                freq.push(self.freq[old as usize]);
            }
            if shifted {
                // Ids moved: rebuild the boundary bitsets from the new
                // kind array in one O(V) pass.
                let mut reads = Bitset::new(n_new);
                let mut writes = Bitset::new(n_new);
                let mut consumer = Bitset::new(n_new);
                for (i, &code) in kind.iter().enumerate() {
                    let k = NodeKind::from_code(code).expect("kind codes are ours");
                    if k.reads_heap() {
                        reads.insert(i);
                    }
                    if k.writes_heap() {
                        writes.insert(i);
                    }
                    if k.is_consumer() {
                        consumer.insert(i);
                    }
                }
                self.reads_heap = Cow::Owned(reads.words);
                self.writes_heap = Cow::Owned(writes.words);
                self.consumer = Cow::Owned(consumer.words);
            } else {
                // Pure tail append: no id moved, so widen the existing
                // bitsets and set only the inserted nodes' bits.
                let words = n_new.div_ceil(64);
                for bits in [
                    self.reads_heap.to_mut(),
                    self.writes_heap.to_mut(),
                    self.consumer.to_mut(),
                ] {
                    bits.resize(words, 0);
                }
                for &(id, k, _) in &delta.new_nodes {
                    let (w, b) = ((id / 64) as usize, 1u64 << (id % 64));
                    if k.reads_heap() {
                        self.reads_heap.to_mut()[w] |= b;
                    }
                    if k.writes_heap() {
                        self.writes_heap.to_mut()[w] |= b;
                    }
                    if k.is_consumer() {
                        self.consumer.to_mut()[w] |= b;
                    }
                }
            }
            self.kind = Cow::Owned(kind);
            self.freq = Cow::Owned(freq);
        }
        let freq = self.freq.to_mut();
        for &(i, d) in &delta.freq_adds {
            freq[i as usize] += d;
        }

        // Adjacency: one forward pass per direction. Untouched surviving
        // nodes copy their slice (targets remapped through the strictly
        // monotone shift, which preserves ascending order); dirty nodes
        // merge their sorted additions in.
        let mut fwd = delta.new_edges.clone();
        fwd.sort_unstable();
        let mut rev: Vec<(u32, u32)> = delta.new_edges.iter().map(|&(a, b)| (b, a)).collect();
        rev.sort_unstable();
        let splice = |off_old: &[u32], adj_old: &[u32], adds: &[(u32, u32)]| {
            let mut off = Vec::with_capacity(n_new + 1);
            let mut adj = Vec::with_capacity(adj_old.len() + adds.len());
            off.push(0u32);
            let mut a = 0usize;
            for (fin, &old) in old_of.iter().enumerate() {
                let start = a;
                while a < adds.len() && adds[a].0 as usize == fin {
                    a += 1;
                }
                let news = &adds[start..a];
                if old == u32::MAX {
                    adj.extend(news.iter().map(|&(_, t)| t));
                } else {
                    let o = old as usize;
                    let olds = &adj_old[off_old[o] as usize..off_old[o + 1] as usize];
                    if news.is_empty() && !shifted {
                        adj.extend_from_slice(olds);
                    } else {
                        // Sorted two-pointer merge of the remapped old
                        // targets and the new ones.
                        let mut i = 0;
                        let mut j = 0;
                        while i < olds.len() || j < news.len() {
                            let ot = olds.get(i).map(|&t| remap[t as usize]);
                            let nt = news.get(j).map(|&(_, t)| t);
                            match (ot, nt) {
                                (Some(x), Some(y)) if x <= y => {
                                    adj.push(x);
                                    i += 1;
                                }
                                (Some(_), Some(y)) => {
                                    adj.push(y);
                                    j += 1;
                                }
                                (Some(x), None) => {
                                    adj.push(x);
                                    i += 1;
                                }
                                (None, Some(y)) => {
                                    adj.push(y);
                                    j += 1;
                                }
                                (None, None) => unreachable!(),
                            }
                        }
                    }
                }
                off.push(adj.len() as u32);
            }
            (off, adj)
        };
        let (so, sa) = splice(&self.succ_off, &self.succ_adj, &fwd);
        let (po, pa) = splice(&self.pred_off, &self.pred_adj, &rev);
        self.succ_off = Cow::Owned(so);
        self.succ_adj = Cow::Owned(sa);
        self.pred_off = Cow::Owned(po);
        self.pred_adj = Cow::Owned(pa);
    }

    /// Over-approximates the seeds whose bounded slice (HRAC when
    /// `forward` is false, HRAB when true) can differ after the nodes in
    /// `dirty` changed — new nodes, frequency bumps, or endpoints of
    /// added edges. Everything *not* returned provably kept its exact
    /// sum, so cached per-seed results for it stay bit-exact.
    ///
    /// Derivation: node `m ≠ s` contributes to seed `s`'s bounded slice
    /// only if `m` is non-boundary and a path `m → … → s` exists whose
    /// interior is non-boundary (the kernel never traverses *through* a
    /// boundary node, but may *end* on any seed). So the affected seeds
    /// of a dirty `d` are `d` itself plus the closure over non-boundary
    /// nodes downstream of `d` (upstream for HRAB) — one bounded sweep
    /// per refresh, not per seed.
    pub fn affected_seeds(&self, dirty: &Bitset, forward: bool) -> Bitset {
        let n = self.num_nodes();
        let boundary = if forward {
            &self.writes_heap
        } else {
            &self.reads_heap
        };
        let mut affected = Bitset::new(n);
        let mut traversed = Bitset::new(n);
        let mut stack: Vec<u32> = Vec::new();
        dirty.for_each_set(|i| {
            affected.insert(i);
            if !word_bit(boundary, i) && traversed.insert(i) {
                stack.push(i as u32);
            }
        });
        while let Some(m) = stack.pop() {
            let next = if forward {
                self.preds(m)
            } else {
                self.succs(m)
            };
            for &t in next {
                affected.insert(t as usize);
                if !word_bit(boundary, t as usize) && traversed.insert(t as usize) {
                    stack.push(t);
                }
            }
        }
        affected
    }

    /// Full (unbounded) backward reachability from `seeds`, seeds
    /// included — the multi-source query behind the dead-value metrics.
    pub fn reach_backward(&self, seeds: impl IntoIterator<Item = NodeId>) -> Bitset {
        let mut seen = Bitset::new(self.num_nodes());
        let mut stack: Vec<u32> = Vec::new();
        for s in seeds {
            if seen.insert(s.index()) {
                stack.push(s.0);
            }
        }
        while let Some(n) = stack.pop() {
            for &p in self.preds(n) {
                if seen.insert(p as usize) {
                    stack.push(p);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slicer::{
        freq_sum, heap_bounded_backward, heap_bounded_forward, reachable, Direction,
    };
    use lowutil_ir::{InstrId, MethodId};

    fn at(pc: u32) -> InstrId {
        InstrId::new(MethodId(0), pc)
    }

    /// load → plain → store → consumer, with a dead side branch.
    fn sample() -> DepGraph<u32> {
        let mut g: DepGraph<u32> = DepGraph::new();
        let kinds = [
            NodeKind::HeapLoad,
            NodeKind::Plain,
            NodeKind::HeapStore,
            NodeKind::Predicate,
            NodeKind::Plain,
        ];
        let ns: Vec<NodeId> = kinds
            .iter()
            .enumerate()
            .map(|(i, &k)| {
                let n = g.intern(at(i as u32), 0, k);
                g.set_freq(n, i as u64 + 1);
                n
            })
            .collect();
        g.add_edge(ns[0], ns[1]);
        g.add_edge(ns[1], ns[2]);
        g.add_edge(ns[1], ns[3]);
        g.add_edge(ns[2], ns[4]);
        g
    }

    #[test]
    fn bitset_basics() {
        let mut b = Bitset::new(130);
        assert!(b.insert(0));
        assert!(!b.insert(0));
        assert!(b.insert(129));
        assert!(b.contains(129) && !b.contains(64));
        assert_eq!(b.count(), 2);
        b.remove(0);
        assert!(!b.contains(0));
        assert_eq!(b.count(), 1);
    }

    /// The word-sweep iterator visits exactly the set bits, in order,
    /// including bits on word boundaries.
    #[test]
    fn for_each_set_matches_contains() {
        let mut b = Bitset::new(200);
        let set = [0usize, 1, 63, 64, 65, 127, 128, 199];
        for &i in &set {
            b.insert(i);
        }
        let mut seen = Vec::new();
        b.for_each_set(|i| seen.push(i));
        assert_eq!(seen, set);
    }

    #[test]
    fn csr_mirrors_adjacency_and_side_arrays() {
        let g = sample();
        let csr = CsrGraph::build(&g);
        assert_eq!(csr.num_nodes(), g.num_nodes());
        assert_eq!(csr.num_edges(), g.num_edges());
        for id in g.node_ids() {
            assert_eq!(csr.freq(id), g.node(id).freq);
            assert_eq!(csr.kind(id), g.node(id).kind);
            let succs: Vec<u32> = g.succs(id).iter().map(|m| m.0).collect();
            assert_eq!(csr.succs(id.0), succs.as_slice());
            let preds: Vec<u32> = g.preds(id).iter().map(|m| m.0).collect();
            assert_eq!(csr.preds(id.0), preds.as_slice());
        }
    }

    #[test]
    fn bounded_sums_match_the_hashset_slicers() {
        let g = sample();
        let csr = CsrGraph::build(&g);
        let mut s = TraversalScratch::for_graph(&csr);
        for id in g.node_ids() {
            assert_eq!(
                csr.heap_bounded_backward_sum(&mut s, id),
                freq_sum(&g, heap_bounded_backward(&g, id)),
                "hrac mismatch at {id}"
            );
            assert_eq!(
                csr.heap_bounded_forward_sum(&mut s, id),
                freq_sum(&g, heap_bounded_forward(&g, id)),
                "hrab mismatch at {id}"
            );
        }
    }

    #[test]
    fn scratch_reuse_is_clean_across_queries() {
        let g = sample();
        let csr = CsrGraph::build(&g);
        let mut s = TraversalScratch::for_graph(&csr);
        let first: Vec<u64> = g
            .node_ids()
            .map(|id| csr.heap_bounded_backward_sum(&mut s, id))
            .collect();
        let second: Vec<u64> = g
            .node_ids()
            .map(|id| csr.heap_bounded_backward_sum(&mut s, id))
            .collect();
        assert_eq!(first, second);
    }

    #[test]
    fn consumer_mark_matches_per_node_forward_queries() {
        let g = sample();
        let csr = CsrGraph::build(&g);
        let marked = csr.mark_consumer_reach();
        for id in g.node_ids() {
            let expect = heap_bounded_forward(&g, id)
                .into_iter()
                .any(|n| g.node(n).kind.is_consumer());
            assert_eq!(marked.contains(id.index()), expect, "flag mismatch at {id}");
        }
    }

    #[test]
    fn consumer_mark_stops_at_heap_writes() {
        // plain → store → predicate: the store reaches the consumer, but
        // the plain node's path crosses the store's heap write.
        let mut g: DepGraph<u32> = DepGraph::new();
        let a = g.intern(at(0), 0, NodeKind::Plain);
        let w = g.intern(at(1), 0, NodeKind::HeapStore);
        let c = g.intern(at(2), 0, NodeKind::Predicate);
        g.add_edge(a, w);
        g.add_edge(w, c);
        let marked = CsrGraph::build(&g).mark_consumer_reach();
        assert!(marked.contains(c.index()));
        assert!(
            marked.contains(w.index()),
            "store's own hop starts after it"
        );
        assert!(!marked.contains(a.index()), "path from a crosses the write");
    }

    #[test]
    fn reach_backward_matches_reachable() {
        let g = sample();
        let csr = CsrGraph::build(&g);
        let seeds: Vec<NodeId> = g
            .node_ids()
            .filter(|&n| g.node(n).kind.is_consumer())
            .collect();
        let bits = csr.reach_backward(seeds.iter().copied());
        let set = reachable(&g, seeds, Direction::Backward, |_| true);
        for id in g.node_ids() {
            assert_eq!(bits.contains(id.index()), set.contains(&id));
        }
        assert_eq!(bits.count(), set.len());
    }
}
