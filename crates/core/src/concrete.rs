//! The concrete (non-abstract) dynamic dependence graph — the baseline the
//! paper improves on.
//!
//! Every instruction *instance* becomes its own node (Definition 1), so the
//! graph grows with trace length instead of being bounded by `|I| × |D|`.
//! Both the thin variant (base pointers not used) and the traditional
//! variant (base pointers used) are provided; the absolute cost of a value
//! (Definition 3) is the size of the backward slice from the instance that
//! produced it. Figure 1's double-counting discussion and the paper's
//! abstract-vs-concrete memory comparison (§4.1, N vs I) are reproduced on
//! top of this module.

use lowutil_ir::{InstrId, Local};
use lowutil_vm::{Event, FrameInfo, ShadowHeap, ShadowStack, Tracer};
use std::collections::HashSet;

/// Dense index of an instruction instance in a [`ConcreteGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InstanceId(pub u32);

impl InstanceId {
    /// Returns the raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Which slicing discipline the concrete profiler applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlicingMode {
    /// Thin slicing: base pointers of heap accesses are not uses.
    Thin,
    /// Traditional dynamic slicing: base pointers are uses.
    Traditional,
}

/// One node of the concrete graph: the `j`-th occurrence of a static
/// instruction.
#[derive(Debug, Clone, Copy)]
pub struct Instance {
    /// The static instruction.
    pub instr: InstrId,
    /// Its occurrence index (1-based, per instruction).
    pub occurrence: u32,
}

/// The unbounded dynamic data dependence graph.
#[derive(Debug, Default)]
pub struct ConcreteGraph {
    instances: Vec<Instance>,
    preds: Vec<Vec<InstanceId>>,
}

impl ConcreteGraph {
    /// Number of instance nodes (grows with the trace).
    pub fn num_instances(&self) -> usize {
        self.instances.len()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.preds.iter().map(Vec::len).sum()
    }

    /// The instance payload.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn instance(&self, id: InstanceId) -> Instance {
        self.instances[id.index()]
    }

    /// The most recent instance of a static instruction, if it executed.
    pub fn last_instance_of(&self, instr: InstrId) -> Option<InstanceId> {
        self.instances
            .iter()
            .rposition(|i| i.instr == instr)
            .map(|i| InstanceId(i as u32))
    }

    /// Direct dependencies (definitions used) of an instance.
    pub fn preds(&self, id: InstanceId) -> &[InstanceId] {
        &self.preds[id.index()]
    }

    /// The backward dynamic slice from `seed`, including it.
    pub fn backward_slice(&self, seed: InstanceId) -> HashSet<InstanceId> {
        let mut seen = HashSet::new();
        let mut stack = vec![seed];
        seen.insert(seed);
        while let Some(n) = stack.pop() {
            for &m in self.preds(n) {
                if seen.insert(m) {
                    stack.push(m);
                }
            }
        }
        seen
    }

    /// Absolute cost of the value produced by `seed` (Definition 3): the
    /// number of instances in its backward slice.
    pub fn absolute_cost(&self, seed: InstanceId) -> u64 {
        self.backward_slice(seed).len() as u64
    }

    /// Approximate memory footprint in bytes.
    pub fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        self.instances.capacity() * size_of::<Instance>()
            + self
                .preds
                .iter()
                .map(|v| v.capacity() * size_of::<InstanceId>())
                .sum::<usize>()
    }

    fn add_instance(&mut self, instr: InstrId, occurrence: u32) -> InstanceId {
        let id = InstanceId(self.instances.len() as u32);
        self.instances.push(Instance { instr, occurrence });
        self.preds.push(Vec::new());
        id
    }
}

/// Per-guest-thread tracking state: the shadow stack aligned with that
/// thread's call stack, plus its in-flight call arguments and return
/// value. The shadow heap and statics stay shared, mirroring the VM's
/// shared heap.
#[derive(Debug, Default)]
struct ThreadLane {
    shadow_stack: ShadowStack<Option<InstanceId>>,
    pending_args: Vec<Option<InstanceId>>,
    ret_stash: Option<InstanceId>,
}

/// Builds a [`ConcreteGraph`] from VM events.
#[derive(Debug)]
pub struct ConcreteProfiler {
    mode: SlicingMode,
    graph: ConcreteGraph,
    occurrences: std::collections::HashMap<InstrId, u32>,
    /// One lane per guest thread; `cur` tracks the scheduler's switches.
    lanes: Vec<ThreadLane>,
    cur: usize,
    shadow_heap: ShadowHeap<Option<InstanceId>, ()>,
    shadow_statics: Vec<Option<InstanceId>>,
}

impl ConcreteProfiler {
    /// Creates a concrete profiler in the given slicing mode.
    pub fn new(mode: SlicingMode) -> Self {
        ConcreteProfiler {
            mode,
            graph: ConcreteGraph::default(),
            occurrences: std::collections::HashMap::new(),
            lanes: vec![ThreadLane::default()],
            cur: 0,
            shadow_heap: ShadowHeap::new(()),
            shadow_statics: Vec::new(),
        }
    }

    /// Consumes the profiler, returning the graph.
    pub fn finish(self) -> ConcreteGraph {
        self.graph
    }

    fn lane(&self) -> &ThreadLane {
        &self.lanes[self.cur]
    }

    fn lane_mut(&mut self) -> &mut ThreadLane {
        &mut self.lanes[self.cur]
    }

    fn shadow(&self, l: Local) -> Option<InstanceId> {
        *self.lane().shadow_stack.top().get(l.index())
    }

    fn set_shadow(&mut self, l: Local, n: Option<InstanceId>) {
        self.lane_mut().shadow_stack.top_mut().set(l.index(), n);
    }

    fn new_instance(&mut self, at: InstrId) -> InstanceId {
        let occ = self.occurrences.entry(at).or_insert(0);
        *occ += 1;
        self.graph.add_instance(at, *occ)
    }

    fn dep(&mut self, node: InstanceId, src: Option<InstanceId>) {
        if let Some(s) = src {
            self.graph.preds[node.index()].push(s);
        }
    }

    fn base_dep(&mut self, node: InstanceId, base: Local) {
        if self.mode == SlicingMode::Traditional {
            let s = self.shadow(base);
            self.dep(node, s);
        }
    }
}

impl Tracer for ConcreteProfiler {
    fn instr(&mut self, event: &Event) {
        match event {
            Event::Compute { at, dst, uses, .. } => {
                let n = self.new_instance(*at);
                for u in uses.iter().flatten() {
                    let s = self.shadow(*u);
                    self.dep(n, s);
                }
                self.set_shadow(*dst, Some(n));
            }
            Event::Predicate { at, uses, .. } => {
                let n = self.new_instance(*at);
                for u in uses {
                    let s = self.shadow(*u);
                    self.dep(n, s);
                }
            }
            Event::Alloc {
                at,
                dst,
                object,
                len_use,
                ..
            } => {
                let n = self.new_instance(*at);
                if let Some(l) = len_use {
                    let s = self.shadow(*l);
                    self.dep(n, s);
                }
                self.set_shadow(*dst, Some(n));
                self.shadow_heap.on_alloc(*object, 0, ());
            }
            Event::LoadField {
                at,
                dst,
                base,
                object,
                offset,
                ..
            } => {
                let n = self.new_instance(*at);
                let s = self.shadow_heap.get(*object, *offset as usize);
                self.dep(n, s);
                self.base_dep(n, *base);
                self.set_shadow(*dst, Some(n));
            }
            Event::StoreField {
                at,
                base,
                object,
                offset,
                src,
                ..
            } => {
                let n = self.new_instance(*at);
                let s = self.shadow(*src);
                self.dep(n, s);
                self.base_dep(n, *base);
                self.shadow_heap.set(*object, *offset as usize, Some(n));
            }
            Event::LoadStatic { at, dst, field, .. } => {
                let n = self.new_instance(*at);
                let s = self.shadow_statics.get(field.index()).copied().flatten();
                self.dep(n, s);
                self.set_shadow(*dst, Some(n));
            }
            Event::StoreStatic { at, field, src, .. } => {
                let n = self.new_instance(*at);
                let s = self.shadow(*src);
                self.dep(n, s);
                if self.shadow_statics.len() <= field.index() {
                    self.shadow_statics.resize(field.index() + 1, None);
                }
                self.shadow_statics[field.index()] = Some(n);
            }
            Event::ArrayLoad {
                at,
                dst,
                base,
                object,
                idx,
                index,
                ..
            } => {
                let n = self.new_instance(*at);
                let si = self.shadow(*idx);
                self.dep(n, si);
                let s = self.shadow_heap.get(*object, *index as usize);
                self.dep(n, s);
                self.base_dep(n, *base);
                self.set_shadow(*dst, Some(n));
            }
            Event::ArrayStore {
                at,
                base,
                object,
                idx,
                index,
                src,
                ..
            } => {
                let n = self.new_instance(*at);
                let si = self.shadow(*idx);
                self.dep(n, si);
                let s = self.shadow(*src);
                self.dep(n, s);
                self.base_dep(n, *base);
                self.shadow_heap.set(*object, *index as usize, Some(n));
            }
            Event::ArrayLen { at, dst, base, .. } => {
                let n = self.new_instance(*at);
                self.base_dep(n, *base);
                self.set_shadow(*dst, Some(n));
            }
            Event::Call { args, .. } => {
                let shadows: Vec<_> = args.iter().map(|a| self.shadow(*a)).collect();
                let lane = self.lane_mut();
                lane.pending_args.clear();
                lane.pending_args.extend(shadows);
            }
            Event::Return { src, .. } => {
                self.lane_mut().ret_stash = src.and_then(|s| self.shadow(s));
            }
            Event::CallComplete { dst, .. } => {
                let stash = self.lane_mut().ret_stash.take();
                if let Some(d) = dst {
                    self.set_shadow(*d, stash);
                }
            }
            Event::Native { at, args, dst, .. } => {
                let n = self.new_instance(*at);
                for a in args {
                    let s = self.shadow(*a);
                    self.dep(n, s);
                }
                if let Some(d) = dst {
                    self.set_shadow(*d, Some(n));
                }
            }
            // The concrete baseline is a single-thread reference graph
            // (the paper's Definition 1 comparison); thread events are
            // opaque producers here — the thread-aware construction
            // lives in `G_cost`.
            Event::Spawn { at, dst, .. } => {
                let n = self.new_instance(*at);
                self.set_shadow(*dst, Some(n));
            }
            Event::Join { at, dst, .. } => {
                let n = self.new_instance(*at);
                if let Some(d) = dst {
                    self.set_shadow(*d, Some(n));
                }
            }
            Event::Jump { .. } | Event::Phase { .. } => {}
        }
    }

    fn frame_push(&mut self, info: &FrameInfo) {
        let lane = self.lane_mut();
        lane.shadow_stack.push(info.num_locals as usize);
        for i in 0..info.num_args as usize {
            let data = lane.pending_args.get(i).copied().flatten();
            lane.shadow_stack.top_mut().set(i, data);
        }
        lane.pending_args.clear();
    }

    fn frame_pop(&mut self) {
        self.lane_mut().shadow_stack.pop();
    }

    fn thread(&mut self, tid: lowutil_ir::ThreadId) {
        self.cur = tid.index();
        if self.lanes.len() <= self.cur {
            self.lanes.resize_with(self.cur + 1, ThreadLane::default);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lowutil_ir::parse_program;
    use lowutil_vm::Vm;

    fn run(src: &str, mode: SlicingMode) -> ConcreteGraph {
        let p = parse_program(src).expect("parse");
        let mut prof = ConcreteProfiler::new(mode);
        Vm::new(&p).run(&mut prof).expect("run");
        prof.finish()
    }

    /// Figure 1: a=0; c=f(a); d=c*3; b=c+d; f(e)=e>>2.
    /// The backward slice from `b = c + d` contains every instance exactly
    /// once — cost 7 here (5 value-producing statements + 2 consts for the
    /// literals 3 and 2 made explicit by three-address form) — *not* the
    /// double-counted 8-style figure a taint-sum would produce.
    const FIGURE1: &str = r#"
method main/0 {
  a = 0
  c = call f(a)
  three = 3
  d = c * three
  b = c + d
  return
}
method f/1 {
  two = 2
  r = p0 >> two
  return r
}
"#;

    #[test]
    fn figure1_no_double_counting() {
        let g = run(FIGURE1, SlicingMode::Thin);
        // b = c + d is pc 4 of main (method 0).
        let seed = g
            .last_instance_of(InstrId::new(lowutil_ir::MethodId(0), 4))
            .expect("b executed");
        let slice = g.backward_slice(seed);
        // Instances: a=0, two=2, r=p0>>two, c (via return: no instance —
        // call/return are transparent), three=3, d, b. That is 6 nodes:
        // {a, two, r, three, d, b}.
        assert_eq!(slice.len(), 6);
        // In particular c's producer `r` appears ONCE even though c feeds
        // both d and b (the Figure 1 double-counting problem).
        assert_eq!(g.absolute_cost(seed), 6);
    }

    #[test]
    fn thin_slices_are_subsets_of_traditional() {
        let src = r#"
native print/1
class Box { v }
method main/0 {
  b = new Box
  x = 3
  b.v = x
  y = b.v
  native print(y)
  return
}
"#;
        let thin = run(src, SlicingMode::Thin);
        let trad = run(src, SlicingMode::Traditional);
        let seed_instr = InstrId::new(lowutil_ir::MethodId(0), 3); // y = b.v
        let ts = thin.backward_slice(thin.last_instance_of(seed_instr).unwrap());
        let rs = trad.backward_slice(trad.last_instance_of(seed_instr).unwrap());
        // Thin: {y, b.v=x, x} — the `new Box` pointer is not included.
        assert_eq!(ts.len(), 3);
        // Traditional adds the allocation producing the base pointer.
        assert_eq!(rs.len(), 4);
    }

    #[test]
    fn instances_grow_with_trace_unlike_abstract_nodes() {
        let src = r#"
method main/0 {
  i = 0
  one = 1
  lim = 200
loop:
  if i >= lim goto done
  i = i + one
  goto loop
done:
  return
}
"#;
        let g = run(src, SlicingMode::Thin);
        // ~3 instances per iteration (branch + add); far more than the ~6
        // static instructions.
        assert!(g.num_instances() > 400);
    }

    #[test]
    fn occurrence_indices_are_per_instruction() {
        let src = r#"
method main/0 {
  i = 0
  one = 1
  two = 2
loop:
  if i >= two goto done
  i = i + one
  goto loop
done:
  return
}
"#;
        let g = run(src, SlicingMode::Thin);
        let add = InstrId::new(lowutil_ir::MethodId(0), 4);
        let last = g.last_instance_of(add).unwrap();
        assert_eq!(g.instance(last).occurrence, 2);
    }
}
