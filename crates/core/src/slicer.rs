//! Slicing traversals over dependence graphs.
//!
//! Backward slices answer "what produced this value" (costs); forward
//! slices answer "what consumed it" (benefits). The heap-bounded variants
//! implement the hop semantics of Definitions 5 and 6: a backward traversal
//! that refuses to continue *through* heap-reading nodes, and a forward
//! traversal that refuses to continue through heap-writing nodes.

use crate::graph::{DepGraph, NodeId};
use std::collections::HashSet;
use std::hash::Hash;

/// Traversal direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Follow predecessors (def → … → seed).
    Backward,
    /// Follow successors (seed → … → use).
    Forward,
}

/// Collects the nodes reachable from `seeds` in `dir`, including the seeds
/// themselves. `enter` decides whether traversal may continue *through* a
/// non-seed node: if `enter(n)` is `false`, `n` is still included in the
/// result but its neighbours are not explored from it.
pub fn reachable<D: Clone + Eq + Hash>(
    graph: &DepGraph<D>,
    seeds: impl IntoIterator<Item = NodeId>,
    dir: Direction,
    mut enter: impl FnMut(NodeId) -> bool,
) -> HashSet<NodeId> {
    let neighbours = |n: NodeId| match dir {
        Direction::Backward => graph.preds(n),
        Direction::Forward => graph.succs(n),
    };
    let mut seen: HashSet<NodeId> = HashSet::new();
    let mut roots: Vec<NodeId> = Vec::new();
    for s in seeds {
        if seen.insert(s) {
            roots.push(s);
        }
    }
    // Seeds always explore, so expand them up front; the work stack then
    // holds interior nodes only and `enter` needs no seed-membership test.
    // (A seed reached again as a neighbour is already in `seen`, so it can
    // never re-enter the stack as an interior node.)
    let mut stack: Vec<NodeId> = Vec::new();
    for &s in &roots {
        for &m in neighbours(s) {
            if seen.insert(m) {
                stack.push(m);
            }
        }
    }
    while let Some(n) = stack.pop() {
        if !enter(n) {
            continue;
        }
        for &m in neighbours(n) {
            if seen.insert(m) {
                stack.push(m);
            }
        }
    }
    seen
}

/// The full backward (thin) slice from `seed`: every node whose value
/// transitively flows into it, including `seed`.
pub fn backward_slice<D: Clone + Eq + Hash>(graph: &DepGraph<D>, seed: NodeId) -> HashSet<NodeId> {
    reachable(graph, [seed], Direction::Backward, |_| true)
}

/// The full forward slice from `seed`.
pub fn forward_slice<D: Clone + Eq + Hash>(graph: &DepGraph<D>, seed: NodeId) -> HashSet<NodeId> {
    reachable(graph, [seed], Direction::Forward, |_| true)
}

/// Sum of node frequencies over a node set — the abstract cost of a slice
/// (Definition 4 when applied to a full backward slice).
pub fn freq_sum<D: Clone + Eq + Hash>(
    graph: &DepGraph<D>,
    nodes: impl IntoIterator<Item = NodeId>,
) -> u64 {
    nodes.into_iter().map(|n| graph.node(n).freq).sum()
}

/// Heap-bounded backward reachability (Definition 5): nodes that reach
/// `seed` along paths whose *interior* (and source side) crosses no
/// heap-reading node. Heap-reading nodes encountered are excluded entirely
/// — the hop starts where the heap was last read.
pub fn heap_bounded_backward<D: Clone + Eq + Hash>(
    graph: &DepGraph<D>,
    seed: NodeId,
) -> HashSet<NodeId> {
    let mut seen: HashSet<NodeId> = HashSet::new();
    let mut stack = vec![seed];
    seen.insert(seed);
    while let Some(n) = stack.pop() {
        for &m in graph.preds(n) {
            if graph.node(m).kind.reads_heap() {
                continue; // the hop boundary
            }
            if seen.insert(m) {
                stack.push(m);
            }
        }
    }
    seen
}

/// Heap-bounded forward reachability (Definition 6): nodes reachable from
/// `seed` along paths crossing no heap-writing node; heap-writing nodes are
/// excluded — the hop ends where the heap is next written.
pub fn heap_bounded_forward<D: Clone + Eq + Hash>(
    graph: &DepGraph<D>,
    seed: NodeId,
) -> HashSet<NodeId> {
    let mut seen: HashSet<NodeId> = HashSet::new();
    let mut stack = vec![seed];
    seen.insert(seed);
    while let Some(n) = stack.pop() {
        for &m in graph.succs(n) {
            if graph.node(m).kind.writes_heap() {
                continue;
            }
            if seen.insert(m) {
                stack.push(m);
            }
        }
    }
    seen
}

/// Multi-hop backward reachability (§3.2 "single-hop vs multi-hop"):
/// like [`heap_bounded_backward`], but traversal may pass *through* up to
/// `hops - 1` heap-reading nodes, widening the inspected region of the
/// data flow. `hops == 1` coincides with the single-hop Definition 5;
/// `hops == usize::MAX` approaches the full (ab-initio) backward slice.
pub fn multi_hop_backward<D: Clone + Eq + Hash>(
    graph: &DepGraph<D>,
    seed: NodeId,
    hops: usize,
) -> HashSet<NodeId> {
    multi_hop(graph, seed, hops, Direction::Backward)
}

/// Multi-hop forward reachability, symmetric to [`multi_hop_backward`]:
/// traversal may pass through up to `hops - 1` heap-writing nodes.
pub fn multi_hop_forward<D: Clone + Eq + Hash>(
    graph: &DepGraph<D>,
    seed: NodeId,
    hops: usize,
) -> HashSet<NodeId> {
    multi_hop(graph, seed, hops, Direction::Forward)
}

/// Shared worker: `budget` counts the heap boundaries still crossable
/// (`hops - 1` initially). A boundary node (heap read when walking
/// backward, heap write when walking forward) consumes one unit and is
/// included; with no budget left it is excluded, exactly like the
/// single-hop Definitions 5/6. Nodes keep the best budget they were
/// reached with, so overlapping paths are handled correctly. `NodeId`s
/// are dense indices, so the budgets live in a flat `Vec` (with
/// `usize::MAX` as the unvisited sentinel — budgets never exceed
/// `hops - 1`, so the sentinel is unambiguous) instead of a `HashMap`.
fn multi_hop<D: Clone + Eq + Hash>(
    graph: &DepGraph<D>,
    seed: NodeId,
    hops: usize,
    dir: Direction,
) -> HashSet<NodeId> {
    const UNVISITED: usize = usize::MAX;
    let start = hops.saturating_sub(1).min(UNVISITED - 1);
    let mut best: Vec<usize> = vec![UNVISITED; graph.num_nodes()];
    let mut stack = vec![(seed, start)];
    best[seed.index()] = start;
    while let Some((n, b)) = stack.pop() {
        let neighbours = match dir {
            Direction::Backward => graph.preds(n),
            Direction::Forward => graph.succs(n),
        };
        for &m in neighbours {
            let crossing = match dir {
                Direction::Backward => graph.node(m).kind.reads_heap(),
                Direction::Forward => graph.node(m).kind.writes_heap(),
            };
            let nb = if crossing {
                if b == 0 {
                    continue; // boundary with no budget: excluded
                }
                b - 1
            } else {
                b
            };
            let old = best[m.index()];
            if old == UNVISITED || nb > old {
                best[m.index()] = nb;
                stack.push((m, nb));
            }
        }
    }
    best.iter()
        .enumerate()
        .filter(|&(_, &b)| b != UNVISITED)
        .map(|(i, _)| NodeId(i as u32))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NodeKind;
    use lowutil_ir::{InstrId, MethodId};

    fn at(pc: u32) -> InstrId {
        InstrId::new(MethodId(0), pc)
    }

    /// Builds a → b → c → d with configurable kinds; returns the graph and
    /// the four nodes.
    fn chain(kinds: [NodeKind; 4]) -> (DepGraph<u32>, [NodeId; 4]) {
        let mut g = DepGraph::new();
        let ns: Vec<NodeId> = kinds
            .iter()
            .enumerate()
            .map(|(i, &k)| {
                let n = g.intern(at(i as u32), 0, k);
                g.bump(n);
                n
            })
            .collect();
        for w in ns.windows(2) {
            g.add_edge(w[0], w[1]);
        }
        (g, [ns[0], ns[1], ns[2], ns[3]])
    }

    #[test]
    fn backward_slice_includes_seed_and_ancestors() {
        let (g, [a, b, c, d]) = chain([NodeKind::Plain; 4]);
        let s = backward_slice(&g, c);
        assert!(s.contains(&a) && s.contains(&b) && s.contains(&c));
        assert!(!s.contains(&d));
        assert_eq!(freq_sum(&g, s), 3);
    }

    #[test]
    fn forward_slice_includes_seed_and_descendants() {
        let (g, [a, b, _c, d]) = chain([NodeKind::Plain; 4]);
        let s = forward_slice(&g, b);
        assert_eq!(s.len(), 3);
        assert!(!s.contains(&a));
        assert!(s.contains(&d));
    }

    #[test]
    fn heap_bounded_backward_stops_at_loads() {
        // a(load) → b → c: HRAC scope of c is {b, c}.
        let (g, [a, b, c, _d]) = chain([
            NodeKind::HeapLoad,
            NodeKind::Plain,
            NodeKind::HeapStore,
            NodeKind::Plain,
        ]);
        let s = heap_bounded_backward(&g, c);
        assert!(s.contains(&c) && s.contains(&b));
        assert!(!s.contains(&a), "heap-reading node excluded");
    }

    #[test]
    fn heap_bounded_forward_stops_at_stores() {
        // a → b(store) and the chain continues; from a, only a is in scope
        // because its sole successor writes the heap.
        let (g, [a, b, _c, _d]) = chain([
            NodeKind::HeapLoad,
            NodeKind::HeapStore,
            NodeKind::Plain,
            NodeKind::Plain,
        ]);
        let s = heap_bounded_forward(&g, a);
        assert_eq!(s.len(), 1);
        assert!(s.contains(&a) && !s.contains(&b));
    }

    #[test]
    fn cycles_terminate() {
        let mut g: DepGraph<u32> = DepGraph::new();
        let a = g.intern(at(0), 0, NodeKind::Plain);
        let b = g.intern(at(1), 0, NodeKind::Plain);
        g.add_edge(a, b);
        g.add_edge(b, a);
        assert_eq!(backward_slice(&g, a).len(), 2);
        assert_eq!(forward_slice(&g, a).len(), 2);
        assert_eq!(heap_bounded_backward(&g, a).len(), 2);
        assert_eq!(heap_bounded_forward(&g, a).len(), 2);
    }

    #[test]
    fn reachable_with_custom_barrier() {
        let (g, [a, b, c, d]) = chain([NodeKind::Plain; 4]);
        // Forward from a, but do not traverse through c.
        let s = reachable(&g, [a], Direction::Forward, |n| n != c);
        assert!(s.contains(&a) && s.contains(&b) && s.contains(&c));
        assert!(!s.contains(&d), "barrier node included but not entered");
    }

    #[test]
    fn multi_hop_widens_the_inspected_region() {
        // load1 → plain1 → store1 → load2 → plain2 → store2 (def-use edges
        // connect stores to the loads of the same location).
        let (mut g, _) = chain([NodeKind::Plain; 4]);
        let mut nodes = Vec::new();
        for (i, kind) in [
            NodeKind::HeapLoad,
            NodeKind::Plain,
            NodeKind::HeapStore,
            NodeKind::HeapLoad,
            NodeKind::Plain,
            NodeKind::HeapStore,
        ]
        .into_iter()
        .enumerate()
        {
            let n = g.intern(at(100 + i as u32), 0, kind);
            g.bump(n);
            nodes.push(n);
        }
        for w in nodes.windows(2) {
            g.add_edge(w[0], w[1]);
        }
        let store2 = nodes[5];
        // One hop: stops at load2 (excluded): {plain2, store2}.
        let one = multi_hop_backward(&g, store2, 1);
        assert_eq!(one, heap_bounded_backward(&g, store2));
        assert_eq!(one.len(), 2);
        // Two hops: crosses load2, stops at load1: {load2, store1, plain1? no —
        // plain1 is before store1 and after load1}: {store2, plain2, load2,
        // store1, plain1}.
        let two = multi_hop_backward(&g, store2, 2);
        assert_eq!(two.len(), 5);
        assert!(two.contains(&nodes[3]) && two.contains(&nodes[1]));
        assert!(!two.contains(&nodes[0]), "load1 excluded at budget 0");
        // Three hops: everything.
        let three = multi_hop_backward(&g, store2, 3);
        assert_eq!(three.len(), 6);
    }

    #[test]
    fn multi_hop_forward_mirrors_backward() {
        let (mut g, _) = chain([NodeKind::Plain; 4]);
        let mut nodes = Vec::new();
        for (i, kind) in [
            NodeKind::HeapLoad,
            NodeKind::HeapStore,
            NodeKind::HeapLoad,
            NodeKind::HeapStore,
        ]
        .into_iter()
        .enumerate()
        {
            let n = g.intern(at(200 + i as u32), 0, kind);
            g.bump(n);
            nodes.push(n);
        }
        for w in nodes.windows(2) {
            g.add_edge(w[0], w[1]);
        }
        let load1 = nodes[0];
        assert_eq!(multi_hop_forward(&g, load1, 1).len(), 1);
        assert_eq!(multi_hop_forward(&g, load1, 2).len(), 3);
        assert_eq!(multi_hop_forward(&g, load1, 3).len(), 4);
    }

    #[test]
    fn multi_seed_reachability() {
        let (g, [a, _b, c, d]) = chain([NodeKind::Plain; 4]);
        let s = reachable(&g, [a, c], Direction::Forward, |_| true);
        assert_eq!(s.len(), 4);
        let _ = d;
    }
}
