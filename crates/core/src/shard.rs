//! Segment-parallel construction of `G_cost` from a recorded trace.
//!
//! A trace (see `lowutil_vm::trace`) is framed into segments at
//! frame-push boundaries, each carrying a prologue describing the live
//! shadow stack. This module builds one *shard graph* per segment,
//! independently and in parallel, then merges the shards into a
//! [`CostGraph`] that is **byte-identical** (under the canonical
//! serialization in [`crate::export`]) to the graph a sequential
//! [`GraphBuilder`](crate::GraphBuilder) run produces. Determinism falls out of the abstract
//! domain: nodes are keyed by `(InstrId, CostElem)`, not arrival order,
//! so shard union is just intern + frequency-sum + edge-union.
//!
//! The only cross-segment information a shard cannot reconstruct locally
//! is (a) the allocation-site tag and allocation-time context of objects
//! allocated in *earlier* segments, and (b) the defining node of shadow
//! locations last written in earlier segments. (a) is solved by two cheap
//! parallel prescan passes that build a global object table
//! ([`scan_alloc_sites`] / [`scan_alloc_contexts`]); (b) is solved
//! *symbolically*: a shard records a read of a location it never wrote as
//! [`Loc`]-labelled external edge, and records its final write to every
//! location, so the sequential merge can resolve each shard's external
//! reads against the accumulated writes of all earlier shards.

use crate::context::{extend_context, slot_of, thread_base, ConflictStats, EMPTY_CONTEXT};
use crate::dense::{DenseInterner, InstrIndexer};
use crate::fx::{FxHashMap, FxHashSet};
use crate::gcost::{
    build_control_deps, new_icache, CostElem, CostGraph, CostGraphConfig, FieldKey, HeapEffect,
    TaggedSite, IC_EMPTY,
};
use crate::graph::{DepGraph, NodeId, NodeKind};
use lowutil_ir::{AllocSiteId, InstrId, Local, ObjectId, Program, StaticId, ThreadId};
use lowutil_vm::trace::{Prologue, PrologueFrame, Segment, TraceError, TraceReader};
use lowutil_vm::{Event, EventSink, FrameInfo};

/// What the prescan learns about one heap object: everything a shard
/// needs to reconstruct `shadow_heap.tag(o)` without having seen the
/// allocation.
#[derive(Debug, Clone, Copy)]
pub struct ObjectInfo {
    /// The allocation site.
    pub site: AllocSiteId,
    /// The encoded context chain `g` at allocation time.
    pub g: u64,
    /// Whether the allocation executed inside a phase window. Under
    /// [`CostGraphConfig::phase_limited`] an out-of-phase allocation is
    /// untagged, exactly as the live profiler leaves it.
    pub in_phase: bool,
}

/// Sequentially replays a whole trace through a fresh [`GraphBuilder`](crate::GraphBuilder) —
/// the single-threaded replay path, and the reference the sharded path
/// is tested against.
///
/// # Errors
/// Fails on a malformed trace.
pub fn replay_cost_graph(
    program: &Program,
    config: CostGraphConfig,
    reader: &TraceReader<'_>,
) -> Result<CostGraph, TraceError> {
    replay_segments(program, config, reader.segments())
}

/// Sequentially replays an explicit segment slice — any prefix (or other
/// subsequence) of a trace — through a fresh [`GraphBuilder`](crate::GraphBuilder).
///
/// This is what makes salvage differential testing possible: the graph of
/// a salvaged reader must be byte-identical (under canonical export) to
/// the graph of the *original* trace restricted to the kept prefix, and
/// this function computes that restriction.
///
/// # Errors
/// Fails on a malformed segment.
pub fn replay_segments(
    program: &Program,
    config: CostGraphConfig,
    segments: &[Segment<'_>],
) -> Result<CostGraph, TraceError> {
    let mut builder = crate::gcost::GraphBuilder::new(program, config);
    for seg in segments {
        // v3 segments are per-thread; announce each segment's owner
        // (idempotent when unchanged, and always MAIN for v1/v2).
        builder.thread(seg.prologue().thread);
        seg.replay(&mut builder)?;
    }
    Ok(builder.finish())
}

// ---------------------------------------------------------------------------
// prescan passes
// ---------------------------------------------------------------------------

/// Prescan pass A (config-independent, parallel per segment): which
/// object ids were allocated at which site, and whether the allocation
/// was inside a phase window.
///
/// # Errors
/// Fails on a malformed segment.
pub fn scan_alloc_sites(
    seg: &Segment<'_>,
) -> Result<Vec<(ObjectId, AllocSiteId, bool)>, TraceError> {
    struct Scan {
        in_phase: bool,
        out: Vec<(ObjectId, AllocSiteId, bool)>,
    }
    impl EventSink for Scan {
        fn event(&mut self, e: &Event) {
            match e {
                Event::Phase { begin, .. } => self.in_phase = *begin,
                Event::Alloc { object, site, .. } => self.out.push((*object, *site, self.in_phase)),
                _ => {}
            }
        }
    }
    let mut s = Scan {
        in_phase: seg.prologue().in_phase,
        out: Vec::new(),
    };
    seg.replay(&mut s)?;
    Ok(s.out)
}

/// Assembles pass A's per-segment results into a dense
/// `object → (site, in_phase)` table.
pub fn build_site_table(
    per_segment: &[Vec<(ObjectId, AllocSiteId, bool)>],
) -> Vec<Option<(AllocSiteId, bool)>> {
    let max = per_segment
        .iter()
        .flatten()
        .map(|(o, ..)| o.index())
        .max()
        .map_or(0, |m| m + 1);
    let mut table = vec![None; max];
    for &(o, site, in_phase) in per_segment.iter().flatten() {
        table[o.index()] = Some((site, in_phase));
    }
    table
}

/// The tag the live profiler's shadow heap carries for `o`: its site,
/// but only if the allocation was armed when it executed.
fn site_of(
    table: &[Option<(AllocSiteId, bool)>],
    phase_limited: bool,
    o: ObjectId,
) -> Option<AllocSiteId> {
    let (site, in_phase) = (*table.get(o.index())?)?;
    if phase_limited && !in_phase {
        return None;
    }
    Some(site)
}

/// Rebuilds the context stack a segment starts under by folding the
/// prologue's receiver chain, outermost frame first, on top of the
/// owning thread's base chain (see
/// [`thread_base`](crate::context::thread_base)).
fn seed_contexts(
    base: u64,
    frames: &[PrologueFrame],
    mut receiver_site: impl FnMut(ObjectId) -> Option<AllocSiteId>,
) -> Vec<u64> {
    let mut gs: Vec<u64> = Vec::with_capacity(frames.len());
    for f in frames {
        let parent = gs.last().copied().unwrap_or(base);
        let g = match f.receiver.and_then(&mut receiver_site) {
            Some(site) => extend_context(parent, site),
            None => parent,
        };
        gs.push(g);
    }
    gs
}

/// Prescan pass B (parallel per segment, given pass A's global site
/// table): the encoded context chain `g` in force at each allocation.
/// Needs the *global* table because a receiver may have been allocated
/// in an earlier segment.
///
/// # Errors
/// Fails on a malformed segment.
pub fn scan_alloc_contexts(
    seg: &Segment<'_>,
    phase_limited: bool,
    site_table: &[Option<(AllocSiteId, bool)>],
) -> Result<Vec<(ObjectId, u64)>, TraceError> {
    struct Scan<'t> {
        base: u64,
        contexts: Vec<u64>,
        table: &'t [Option<(AllocSiteId, bool)>],
        phase_limited: bool,
        out: Vec<(ObjectId, u64)>,
    }
    impl EventSink for Scan<'_> {
        fn event(&mut self, e: &Event) {
            if let Event::Alloc { object, .. } = e {
                let g = self.contexts.last().copied().unwrap_or(self.base);
                self.out.push((*object, g));
            }
        }

        fn frame_push(&mut self, info: &FrameInfo) {
            let parent = self.contexts.last().copied().unwrap_or(self.base);
            let site = info
                .receiver
                .and_then(|o| site_of(self.table, self.phase_limited, o));
            let g = match site {
                Some(site) => extend_context(parent, site),
                None => parent,
            };
            self.contexts.push(g);
        }

        fn frame_pop(&mut self) {
            self.contexts.pop();
        }
    }
    let base = thread_base(seg.prologue().thread);
    let mut s = Scan {
        base,
        contexts: seed_contexts(base, &seg.prologue().frames, |o| {
            site_of(site_table, phase_limited, o)
        }),
        table: site_table,
        phase_limited,
        out: Vec::new(),
    };
    seg.replay(&mut s)?;
    Ok(s.out)
}

/// Zips the two prescan passes into the final object table.
pub fn build_object_table(
    site_table: &[Option<(AllocSiteId, bool)>],
    per_segment_gs: &[Vec<(ObjectId, u64)>],
) -> Vec<Option<ObjectInfo>> {
    let mut table: Vec<Option<ObjectInfo>> = site_table
        .iter()
        .map(|e| {
            e.map(|(site, in_phase)| ObjectInfo {
                site,
                g: EMPTY_CONTEXT,
                in_phase,
            })
        })
        .collect();
    for &(o, g) in per_segment_gs.iter().flatten() {
        if let Some(Some(info)) = table.get_mut(o.index()) {
            info.g = g;
        }
    }
    table
}

// ---------------------------------------------------------------------------
// shard building
// ---------------------------------------------------------------------------

/// A shadow *location* in the global run, used to name cross-segment
/// data flow symbolically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Loc {
    /// A local slot of a specific dynamic frame (`frame` is the global
    /// push index the trace writer assigned).
    Local {
        /// Global frame id.
        frame: u64,
        /// Local slot.
        local: u16,
    },
    /// A heap slot (field offset or array index) of an object.
    Heap {
        /// The object.
        object: ObjectId,
        /// The slot within the object.
        slot: u32,
    },
    /// A static field.
    Static(u32),
    /// The `i`-th pending call argument at the segment boundary (a
    /// `Call` event at the very end of a segment whose `frame_push`
    /// opens the next segment). Pending arguments are thread-local
    /// state, so resolution is against the owning thread's argument
    /// stash (trace v3 segments are per-thread).
    Arg(u16),
    /// The `i`-th actual a `Spawn` stashed for thread `thread`, consumed
    /// by the formals of that thread's root frame.
    SpawnArg {
        /// The spawned thread.
        thread: u32,
        /// The argument position.
        i: u16,
    },
    /// The return value of finished thread `thread` (written at its root
    /// frame pop, read by `Join`).
    ThreadRet(u32),
}

/// The symbolic value of a shadow location inside one shard.
#[derive(Debug, Clone, Copy)]
enum Sym {
    /// Known empty (either never written, in a frame/object this shard
    /// created, or explicitly overwritten with "no data").
    None,
    /// Written by this shard's node.
    Node(NodeId),
    /// Whatever value the location held when the segment started.
    Init(Loc),
}

/// Shared, immutable context for building every shard of one replay.
#[derive(Debug)]
pub struct ShardContext {
    config: CostGraphConfig,
    indexer: InstrIndexer,
    control_deps: FxHashMap<InstrId, Vec<InstrId>>,
}

impl ShardContext {
    /// Prepares the per-replay tables (instruction indexer and, under
    /// `control_edges`, the static control-dependence table).
    pub fn new(program: &Program, config: CostGraphConfig) -> Self {
        ShardContext {
            config,
            indexer: InstrIndexer::new(program),
            control_deps: build_control_deps(program, &config),
        }
    }

    /// The configuration shards are built under.
    pub fn config(&self) -> &CostGraphConfig {
        &self.config
    }
}

#[derive(Debug)]
struct SymFrame {
    /// Global frame id.
    gid: u64,
    /// `true` for frames inherited from the prologue: reads of unwritten
    /// locals refer to pre-segment state instead of being empty.
    outer: bool,
    vals: FxHashMap<u16, Sym>,
}

#[derive(Debug, Default)]
struct SymObj {
    /// `true` when this shard saw the allocation, so unwritten slots are
    /// known-empty rather than external.
    in_shard: bool,
    vals: FxHashMap<u32, Sym>,
}

/// One segment's contribution to the merged graph.
#[derive(Debug)]
pub struct ShardGraph {
    /// The thread that executed this segment (v3 segments are
    /// per-thread; always MAIN for v1/v2). Pending-argument state is
    /// thread-local, so the merge resolves [`Loc::Arg`] against this
    /// thread's stash.
    thread: ThreadId,
    graph: DepGraph<CostElem>,
    /// Reads of pre-segment shadow state: `(location, consuming node)`.
    ext_edges: Vec<(Loc, NodeId)>,
    /// The value every written location holds at segment end.
    final_locs: Vec<(Loc, Sym)>,
    /// Pending call arguments at segment end (`None` = untouched, so the
    /// boundary arguments carried into this segment are still pending).
    final_args: Option<Vec<Sym>>,
    ref_edges: FxHashSet<(NodeId, NodeId)>,
    /// Store-to-allocation reference edges whose allocation node lives in
    /// an earlier segment.
    ext_ref_edges: Vec<(NodeId, TaggedSite)>,
    /// Alloc-to-length def-use edges whose allocation node lives in an
    /// earlier segment.
    ext_len_edges: Vec<(TaggedSite, NodeId)>,
    effects: Vec<Option<HeapEffect>>,
    alloc_nodes: FxHashMap<TaggedSite, NodeId>,
    points_to: FxHashMap<(TaggedSite, FieldKey), FxHashSet<TaggedSite>>,
    conflicts: ConflictStats,
    instr_instances: u64,
    /// Shadow-heap occupancy this shard caused: object → minimum slot
    /// count (0 for a bare armed allocation). Reproduces the live
    /// shadow heap's memory accounting.
    heap_touch: FxHashMap<ObjectId, u32>,
}

/// Reusable allocation arena for the shard builder's big side tables —
/// the dense `|I| × |D|` interning table and the per-instruction
/// inline-cache array, both sized by the static instruction count and
/// so by far the largest per-shard allocations. A worker thread keeps
/// one scratch and threads it through every shard it builds
/// ([`build_shard_reusing`] / [`shard_sink_reusing`]): construction
/// reuses the warm tables and the between-shards reset clears only the
/// entries actually written (O(nodes interned), not O(|I| × |D|)), so
/// steady-state shard building stops paying the allocator per batch.
#[derive(Debug, Default)]
pub struct ShardScratch {
    dense: Option<DenseInterner>,
    icache: Vec<(u64, NodeId)>,
    /// Inline-cache slots first-written this shard; the reset list.
    icache_touched: Vec<u32>,
}

impl ShardScratch {
    /// Allocates scratch sized for `ctx`.
    pub fn new(ctx: &ShardContext) -> Self {
        let mut s = ShardScratch::default();
        s.ensure(ctx);
        s
    }

    /// (Re)allocates the tables when absent or mis-sized for `ctx`; a
    /// clean scratch carried between shards of one replay is a no-op.
    fn ensure(&mut self, ctx: &ShardContext) {
        let config = &ctx.config;
        let n = ctx.indexer.num_instrs();
        let card = config.slots as usize + 1;
        let dense_ok = matches!(
            &self.dense,
            Some(t) if t.num_slots() == n * card && t.cardinality() == card
        );
        if config.dense_interning {
            if !dense_ok {
                self.dense = Some(DenseInterner::new(n, card));
            }
        } else {
            self.dense = None;
        }
        let want = if config.inline_caches { n } else { 0 };
        if self.icache.len() != want {
            self.icache = new_icache(config.inline_caches, n);
            self.icache_touched.clear();
        }
    }

    /// Returns the tables to their empty state by undoing only the
    /// writes of the shard just finished.
    fn reset(&mut self) {
        if let Some(d) = &mut self.dense {
            d.reset();
        }
        for &i in &self.icache_touched {
            self.icache[i as usize] = (0, IC_EMPTY);
        }
        self.icache_touched.clear();
    }
}

/// Replays one segment into a fresh shard graph.
///
/// # Errors
/// Fails on a malformed segment.
pub fn build_shard(
    ctx: &ShardContext,
    objects: &[Option<ObjectInfo>],
    seg: &Segment<'_>,
) -> Result<ShardGraph, TraceError> {
    let mut b = ShardBuilder::new(ctx, objects, seg.prologue());
    seg.replay(&mut b)?;
    Ok(b.finish())
}

/// [`build_shard`] with arena reuse: builds the segment's shard using
/// (and afterwards resetting and restoring) `scratch`'s side tables.
/// The graph is identical to [`build_shard`]'s — the tables start every
/// shard empty either way; only the allocations are shared.
///
/// # Errors
/// Fails on a malformed segment. The scratch is replaced by a fresh
/// (empty) one on error, so a caller retrying stays correct.
pub fn build_shard_reusing(
    ctx: &ShardContext,
    objects: &[Option<ObjectInfo>],
    seg: &Segment<'_>,
    scratch: &mut ShardScratch,
) -> Result<ShardGraph, TraceError> {
    let mut b = ShardBuilder::with_scratch(ctx, objects, seg.prologue(), std::mem::take(scratch));
    seg.replay(&mut b)?;
    let (graph, sc) = b.finish_parts();
    *scratch = sc;
    Ok(graph)
}

/// An incrementally fed shard builder — the same construction as
/// [`build_shard`], but driven by an in-memory event stream (a live
/// pipelined batch) instead of a decoded trace segment. Feed it the
/// batch's records through the [`EventSink`] hooks, then call
/// [`ShardSink::finish`].
#[derive(Debug)]
pub struct ShardSink<'c>(ShardBuilder<'c>);

/// Starts a shard for a live batch beginning at `prologue`. `objects`
/// must describe (at least) every object allocated before or inside the
/// batch — the streaming [`ObjectTableScan`] produces exactly that.
pub fn shard_sink<'c>(
    ctx: &'c ShardContext,
    objects: &'c [Option<ObjectInfo>],
    prologue: &Prologue,
) -> ShardSink<'c> {
    ShardSink(ShardBuilder::new(ctx, objects, prologue))
}

/// [`shard_sink`] with arena reuse: the builder borrows `scratch`'s
/// side tables instead of allocating fresh ones; reclaim the scratch
/// with [`ShardSink::finish_reusing`]. Graphs are identical to the
/// allocating path's.
pub fn shard_sink_reusing<'c>(
    ctx: &'c ShardContext,
    objects: &'c [Option<ObjectInfo>],
    prologue: &Prologue,
    scratch: ShardScratch,
) -> ShardSink<'c> {
    ShardSink(ShardBuilder::with_scratch(ctx, objects, prologue, scratch))
}

impl ShardSink<'_> {
    /// Finalizes the shard's contribution for [`merge_shards`].
    pub fn finish(self) -> ShardGraph {
        self.0.finish()
    }

    /// Like [`finish`](ShardSink::finish), but also hands back the
    /// (reset) scratch for the caller's next shard.
    pub fn finish_reusing(self) -> (ShardGraph, ShardScratch) {
        self.0.finish_parts()
    }
}

impl EventSink for ShardSink<'_> {
    fn event(&mut self, event: &Event) {
        self.0.event(event);
    }

    fn frame_push(&mut self, info: &FrameInfo) {
        self.0.frame_push(info);
    }

    fn frame_pop(&mut self) {
        self.0.frame_pop();
    }
}

/// Streaming, in-run replacement for the two offline prescan passes
/// ([`scan_alloc_sites`] + [`scan_alloc_contexts`]): fed the run's
/// batches in order, it maintains the growing object table and reports
/// each batch's newly allocated objects as a delta.
///
/// The fusion into one in-order pass is valid because any object a
/// frame push or store references must already exist — i.e. was
/// allocated earlier in the same stream — so the prefix table answers
/// every lookup the offline passes answer with the global table.
#[derive(Debug)]
pub struct ObjectTableScan {
    phase_limited: bool,
    /// Per-thread receiver-chain stacks; batches announce their owning
    /// thread through the [`EventSink::thread`] hook before replaying.
    contexts: Vec<Vec<u64>>,
    cur: usize,
    in_phase: bool,
    table: Vec<Option<ObjectInfo>>,
    delta: Vec<(ObjectId, ObjectInfo)>,
}

impl ObjectTableScan {
    /// A scanner for a run starting outside any frame and any phase.
    pub fn new(phase_limited: bool) -> Self {
        ObjectTableScan {
            phase_limited,
            contexts: vec![Vec::new()],
            cur: 0,
            in_phase: false,
            table: Vec::new(),
            delta: Vec::new(),
        }
    }

    /// The current thread's encoded chain (its thread base when no
    /// frame is live).
    fn current_g(&self) -> u64 {
        self.contexts[self.cur]
            .last()
            .copied()
            .unwrap_or_else(|| thread_base(ThreadId(self.cur as u32)))
    }

    /// The object table over everything scanned so far.
    pub fn table(&self) -> &[Option<ObjectInfo>] {
        &self.table
    }

    /// Drains the entries recorded since the last call — what a worker
    /// thread needs to bring its private table copy up to date.
    pub fn take_delta(&mut self) -> Vec<(ObjectId, ObjectInfo)> {
        std::mem::take(&mut self.delta)
    }
}

impl EventSink for ObjectTableScan {
    fn event(&mut self, e: &Event) {
        match e {
            Event::Phase { begin, .. } => self.in_phase = *begin,
            Event::Alloc { object, site, .. } => {
                let info = ObjectInfo {
                    site: *site,
                    g: self.current_g(),
                    in_phase: self.in_phase,
                };
                apply_object_delta(&mut self.table, &[(*object, info)]);
                self.delta.push((*object, info));
            }
            _ => {}
        }
    }

    fn frame_push(&mut self, info: &FrameInfo) {
        let parent = self.current_g();
        let site = info.receiver.and_then(|o| {
            self.table
                .get(o.index())
                .copied()
                .flatten()
                .filter(|i| !self.phase_limited || i.in_phase)
                .map(|i| i.site)
        });
        let g = match site {
            Some(site) => extend_context(parent, site),
            None => parent,
        };
        self.contexts[self.cur].push(g);
    }

    fn frame_pop(&mut self) {
        self.contexts[self.cur].pop();
    }

    fn thread(&mut self, tid: ThreadId) {
        self.cur = tid.index();
        if self.contexts.len() <= self.cur {
            self.contexts.resize_with(self.cur + 1, Vec::new);
        }
    }
}

/// Applies an [`ObjectTableScan`] delta to a (possibly shorter) table
/// copy, growing it as needed.
pub fn apply_object_delta(table: &mut Vec<Option<ObjectInfo>>, delta: &[(ObjectId, ObjectInfo)]) {
    for &(o, info) in delta {
        if table.len() <= o.index() {
            table.resize(o.index() + 1, None);
        }
        table[o.index()] = Some(info);
    }
}

#[derive(Debug)]
struct ShardBuilder<'c> {
    ctx: &'c ShardContext,
    objects: &'c [Option<ObjectInfo>],
    /// The segment's owning thread and its context-chain base.
    thread: ThreadId,
    base: u64,
    /// Spawn-stash writes this shard produced: `(SpawnArg loc, sym)` for
    /// each actual of each `Spawn`, appended to `final_locs`.
    spawn_out: Vec<(Loc, Sym)>,
    /// The return-value sym recorded at this thread's root frame pop.
    thread_ret: Option<Sym>,
    graph: DepGraph<CostElem>,
    /// The two |I|-sized side tables (dense interner + inline caches),
    /// owned here but possibly on loan from a worker's reusable arena.
    scratch: ShardScratch,
    frames: Vec<SymFrame>,
    contexts: Vec<u64>,
    heap: FxHashMap<ObjectId, SymObj>,
    statics: FxHashMap<u32, Sym>,
    pending_args: Option<Vec<Sym>>,
    ret_stash: Sym,
    ext_edges: Vec<(Loc, NodeId)>,
    ref_edges: FxHashSet<(NodeId, NodeId)>,
    ext_ref_edges: Vec<(NodeId, TaggedSite)>,
    ext_len_edges: Vec<(TaggedSite, NodeId)>,
    effects: Vec<Option<HeapEffect>>,
    alloc_nodes: FxHashMap<TaggedSite, NodeId>,
    points_to: FxHashMap<(TaggedSite, FieldKey), FxHashSet<TaggedSite>>,
    conflicts: ConflictStats,
    instr_instances: u64,
    heap_touch: FxHashMap<ObjectId, u32>,
    armed: bool,
    next_gid: u64,
}

impl<'c> ShardBuilder<'c> {
    fn new(ctx: &'c ShardContext, objects: &'c [Option<ObjectInfo>], prologue: &Prologue) -> Self {
        Self::with_scratch(ctx, objects, prologue, ShardScratch::default())
    }

    fn with_scratch(
        ctx: &'c ShardContext,
        objects: &'c [Option<ObjectInfo>],
        prologue: &Prologue,
        mut scratch: ShardScratch,
    ) -> Self {
        scratch.ensure(ctx);
        let config = &ctx.config;
        let base = thread_base(prologue.thread);
        let contexts = seed_contexts(base, &prologue.frames, |o| {
            objects
                .get(o.index())
                .copied()
                .flatten()
                .filter(|info| !config.phase_limited || info.in_phase)
                .map(|info| info.site)
        });
        let frames = prologue
            .frames
            .iter()
            .map(|f| SymFrame {
                gid: f.gid,
                outer: true,
                vals: FxHashMap::default(),
            })
            .collect();
        ShardBuilder {
            ctx,
            objects,
            thread: prologue.thread,
            base,
            spawn_out: Vec::new(),
            thread_ret: None,
            graph: DepGraph::new(),
            scratch,
            frames,
            contexts,
            heap: FxHashMap::default(),
            statics: FxHashMap::default(),
            pending_args: None,
            ret_stash: Sym::None,
            ext_edges: Vec::new(),
            ref_edges: FxHashSet::default(),
            ext_ref_edges: Vec::new(),
            ext_len_edges: Vec::new(),
            effects: Vec::new(),
            alloc_nodes: FxHashMap::default(),
            points_to: FxHashMap::default(),
            conflicts: ConflictStats::new(),
            instr_instances: 0,
            heap_touch: FxHashMap::default(),
            armed: !config.phase_limited || prologue.in_phase,
            next_gid: prologue.first_gid,
        }
    }

    /// The live profiler's `shadow_heap.tag(o)`, reconstructed from the
    /// prescan object table.
    fn tag_of(&self, o: ObjectId) -> Option<TaggedSite> {
        let info = self.objects.get(o.index()).copied().flatten()?;
        if self.ctx.config.phase_limited && !info.in_phase {
            return None;
        }
        Some(TaggedSite {
            site: info.site,
            slot: slot_of(info.g, self.ctx.config.slots),
        })
    }

    fn current_g(&self) -> u64 {
        self.contexts.last().copied().unwrap_or(self.base)
    }

    fn read_local(&self, l: Local) -> Sym {
        let f = self.frames.last().expect("shadow frame present");
        match f.vals.get(&l.0) {
            Some(&s) => s,
            None if f.outer => Sym::Init(Loc::Local {
                frame: f.gid,
                local: l.0,
            }),
            None => Sym::None,
        }
    }

    fn write_local(&mut self, l: Local, s: Sym) {
        self.frames
            .last_mut()
            .expect("shadow frame present")
            .vals
            .insert(l.0, s);
    }

    fn heap_read(&mut self, o: ObjectId, slot: u32) -> Sym {
        let e = self.heap.entry(o).or_default();
        match e.vals.get(&slot) {
            Some(&s) => s,
            None if e.in_shard => Sym::None,
            None => Sym::Init(Loc::Heap { object: o, slot }),
        }
    }

    fn heap_write(&mut self, o: ObjectId, slot: u32, s: Sym) {
        self.heap.entry(o).or_default().vals.insert(slot, s);
        let touch = self.heap_touch.entry(o).or_insert(0);
        *touch = (*touch).max(slot + 1);
    }

    fn static_read(&self, f: StaticId) -> Sym {
        match self.statics.get(&f.0) {
            Some(&s) => s,
            None => Sym::Init(Loc::Static(f.0)),
        }
    }

    fn intern(&mut self, at: InstrId, elem: CostElem, kind: NodeKind) -> NodeId {
        match &mut self.scratch.dense {
            Some(table) => table.intern(&mut self.graph, &self.ctx.indexer, at, elem, kind),
            None => self.graph.intern(at, elem, kind),
        }
    }

    /// Same inline-cache fast path as the live `GraphBuilder` (see the
    /// correctness notes there); the cache is per-shard (reset between
    /// shards when the scratch is reused), so a hit can only repeat
    /// work this shard already did.
    #[inline]
    fn ctx_node(&mut self, at: InstrId, kind: NodeKind) -> NodeId {
        let g = self.current_g();
        if self.ctx.config.inline_caches {
            let idx = self.ctx.indexer.index(at);
            let (cached_g, cached_n) = self.scratch.icache[idx];
            if cached_n != IC_EMPTY && cached_g == g {
                self.graph.bump(cached_n);
                return cached_n;
            }
            let n = self.ctx_node_slow(at, kind, g);
            if cached_n == IC_EMPTY {
                // First write to this slot this shard: remember it for
                // the O(entries-used) scratch reset.
                self.scratch.icache_touched.push(idx as u32);
            }
            self.scratch.icache[idx] = (g, n);
            return n;
        }
        self.ctx_node_slow(at, kind, g)
    }

    fn ctx_node_slow(&mut self, at: InstrId, kind: NodeKind, g: u64) -> NodeId {
        let slot = slot_of(g, self.ctx.config.slots);
        if self.ctx.config.track_conflicts {
            self.conflicts.record(at, slot, g);
        }
        let n = self.intern(at, CostElem::Ctx(slot), kind);
        self.graph.bump(n);
        if self.ctx.config.control_edges {
            if let Some(branches) = self.ctx.control_deps.get(&at) {
                for b in branches.clone() {
                    let pnode = self.intern(b, CostElem::NoCtx, NodeKind::Predicate);
                    self.graph.add_edge(pnode, n);
                }
            }
        }
        n
    }

    fn consumer_node(&mut self, at: InstrId, kind: NodeKind) -> NodeId {
        let n = self.intern(at, CostElem::NoCtx, kind);
        self.graph.bump(n);
        n
    }

    fn set_effect(&mut self, n: NodeId, eff: HeapEffect) {
        let i = n.index();
        if self.effects.len() <= i {
            self.effects.resize(i + 1, None);
        }
        self.effects[i] = Some(eff);
    }

    fn edge_from(&mut self, src: Sym, to: NodeId) {
        match src {
            Sym::None => {}
            Sym::Node(m) => self.graph.add_edge(m, to),
            Sym::Init(loc) => self.ext_edges.push((loc, to)),
        }
    }

    fn store_common(
        &mut self,
        n: NodeId,
        object: ObjectId,
        field: FieldKey,
        value: lowutil_ir::Value,
    ) {
        if let Some(tag) = self.tag_of(object) {
            self.set_effect(n, HeapEffect::Store { site: tag, field });
            match self.alloc_nodes.get(&tag) {
                Some(&alloc) => {
                    self.ref_edges.insert((n, alloc));
                }
                None => self.ext_ref_edges.push((n, tag)),
            }
            if let Some(target) = value.as_ref_id() {
                if let Some(tag2) = self.tag_of(target) {
                    self.points_to.entry((tag, field)).or_default().insert(tag2);
                }
            }
        }
    }

    fn finish(self) -> ShardGraph {
        self.finish_parts().0
    }

    /// Finalizes the shard and returns the reset scratch for reuse.
    fn finish_parts(mut self) -> (ShardGraph, ShardScratch) {
        self.scratch.reset();
        let mut final_locs: Vec<(Loc, Sym)> = Vec::new();
        for f in &self.frames {
            for (&l, &s) in &f.vals {
                final_locs.push((
                    Loc::Local {
                        frame: f.gid,
                        local: l,
                    },
                    s,
                ));
            }
        }
        for (&o, so) in &self.heap {
            for (&slot, &s) in &so.vals {
                final_locs.push((Loc::Heap { object: o, slot }, s));
            }
        }
        for (&f, &s) in &self.statics {
            final_locs.push((Loc::Static(f), s));
        }
        // Cross-thread hand-offs: spawn stashes and this thread's
        // return value (keys are globally unique — thread ids are never
        // reused — so ordering among them is immaterial).
        final_locs.append(&mut self.spawn_out);
        if let Some(s) = self.thread_ret.take() {
            final_locs.push((Loc::ThreadRet(self.thread.0), s));
        }
        let graph = ShardGraph {
            thread: self.thread,
            graph: self.graph,
            ext_edges: self.ext_edges,
            final_locs,
            final_args: self.pending_args,
            ref_edges: self.ref_edges,
            ext_ref_edges: self.ext_ref_edges,
            ext_len_edges: self.ext_len_edges,
            effects: self.effects,
            alloc_nodes: self.alloc_nodes,
            points_to: self.points_to,
            conflicts: self.conflicts,
            instr_instances: self.instr_instances,
            heap_touch: self.heap_touch,
        };
        (graph, self.scratch)
    }
}

impl EventSink for ShardBuilder<'_> {
    fn event(&mut self, event: &Event) {
        if let Event::Phase { begin, .. } = event {
            if self.ctx.config.phase_limited {
                self.armed = *begin;
            }
            return;
        }
        if !self.armed {
            match event {
                Event::Call { .. } => self.pending_args = Some(Vec::new()),
                Event::Return { .. } => self.ret_stash = Sym::None,
                _ => {}
            }
            return;
        }
        if !matches!(event, Event::CallComplete { .. }) {
            self.instr_instances += 1;
        }
        match event {
            Event::Compute { at, dst, uses, .. } => {
                let n = self.ctx_node(*at, NodeKind::Plain);
                for u in uses.iter().flatten() {
                    let s = self.read_local(*u);
                    self.edge_from(s, n);
                }
                self.write_local(*dst, Sym::Node(n));
            }
            Event::Predicate { at, uses, .. } => {
                let n = self.consumer_node(*at, NodeKind::Predicate);
                for u in uses {
                    let s = self.read_local(*u);
                    self.edge_from(s, n);
                }
            }
            Event::Alloc {
                at,
                dst,
                object,
                site,
                len_use,
            } => {
                let n = self.ctx_node(*at, NodeKind::Alloc);
                if let Some(l) = len_use {
                    let s = self.read_local(*l);
                    self.edge_from(s, n);
                }
                self.write_local(*dst, Sym::Node(n));
                let slot = slot_of(self.current_g(), self.ctx.config.slots);
                let tag = TaggedSite { site: *site, slot };
                self.heap.insert(
                    *object,
                    SymObj {
                        in_shard: true,
                        vals: FxHashMap::default(),
                    },
                );
                self.heap_touch.entry(*object).or_insert(0);
                self.alloc_nodes.insert(tag, n);
                self.set_effect(n, HeapEffect::Alloc { site: tag });
            }
            Event::LoadField {
                at,
                dst,
                base,
                object,
                field,
                offset,
                ..
            } => {
                let n = self.ctx_node(*at, NodeKind::HeapLoad);
                let src = self.heap_read(*object, *offset);
                self.edge_from(src, n);
                if self.ctx.config.traditional_uses {
                    let b = self.read_local(*base);
                    self.edge_from(b, n);
                }
                self.write_local(*dst, Sym::Node(n));
                if let Some(tag) = self.tag_of(*object) {
                    self.set_effect(
                        n,
                        HeapEffect::Load {
                            site: tag,
                            field: FieldKey::Field(*field),
                        },
                    );
                }
            }
            Event::StoreField {
                at,
                base,
                object,
                field,
                offset,
                src,
                value,
                ..
            } => {
                let n = self.ctx_node(*at, NodeKind::HeapStore);
                let s = self.read_local(*src);
                self.edge_from(s, n);
                if self.ctx.config.traditional_uses {
                    let b = self.read_local(*base);
                    self.edge_from(b, n);
                }
                self.heap_write(*object, *offset, Sym::Node(n));
                self.store_common(n, *object, FieldKey::Field(*field), *value);
            }
            Event::LoadStatic { at, dst, field, .. } => {
                let n = self.ctx_node(*at, NodeKind::HeapLoad);
                let src = self.static_read(*field);
                self.edge_from(src, n);
                self.write_local(*dst, Sym::Node(n));
                self.set_effect(n, HeapEffect::LoadStatic(*field));
            }
            Event::StoreStatic { at, field, src, .. } => {
                let n = self.ctx_node(*at, NodeKind::HeapStore);
                let s = self.read_local(*src);
                self.edge_from(s, n);
                self.statics.insert(field.0, Sym::Node(n));
                self.set_effect(n, HeapEffect::StoreStatic(*field));
            }
            Event::ArrayLoad {
                at,
                dst,
                base,
                object,
                idx,
                index,
                ..
            } => {
                let n = self.ctx_node(*at, NodeKind::HeapLoad);
                let i = self.read_local(*idx);
                self.edge_from(i, n);
                if self.ctx.config.traditional_uses {
                    let b = self.read_local(*base);
                    self.edge_from(b, n);
                }
                let src = self.heap_read(*object, *index);
                self.edge_from(src, n);
                self.write_local(*dst, Sym::Node(n));
                if let Some(tag) = self.tag_of(*object) {
                    self.set_effect(
                        n,
                        HeapEffect::Load {
                            site: tag,
                            field: FieldKey::Element,
                        },
                    );
                }
            }
            Event::ArrayStore {
                at,
                base,
                object,
                idx,
                index,
                src,
                value,
                ..
            } => {
                let n = self.ctx_node(*at, NodeKind::HeapStore);
                let i = self.read_local(*idx);
                self.edge_from(i, n);
                if self.ctx.config.traditional_uses {
                    let b = self.read_local(*base);
                    self.edge_from(b, n);
                }
                let s = self.read_local(*src);
                self.edge_from(s, n);
                self.heap_write(*object, *index, Sym::Node(n));
                self.store_common(n, *object, FieldKey::Element, *value);
            }
            Event::ArrayLen {
                at,
                dst,
                base,
                object,
                ..
            } => {
                let n = self.ctx_node(*at, NodeKind::HeapLoad);
                if self.ctx.config.traditional_uses {
                    let b = self.read_local(*base);
                    self.edge_from(b, n);
                }
                // The length was produced by the allocation.
                if let Some(tag) = self.tag_of(*object) {
                    match self.alloc_nodes.get(&tag) {
                        Some(&alloc) => self.graph.add_edge(alloc, n),
                        None => self.ext_len_edges.push((tag, n)),
                    }
                    self.set_effect(
                        n,
                        HeapEffect::Load {
                            site: tag,
                            field: FieldKey::Length,
                        },
                    );
                }
                self.write_local(*dst, Sym::Node(n));
            }
            Event::Call { args, .. } => {
                let syms: Vec<Sym> = args.iter().map(|a| self.read_local(*a)).collect();
                self.pending_args = Some(syms);
            }
            Event::Return { src, .. } => {
                self.ret_stash = match src {
                    Some(s) => self.read_local(*s),
                    None => Sym::None,
                };
            }
            Event::CallComplete { dst, .. } => {
                let stash = std::mem::replace(&mut self.ret_stash, Sym::None);
                if let Some(d) = dst {
                    self.write_local(*d, stash);
                }
            }
            Event::Native { at, args, dst, .. } => {
                let n = self.consumer_node(*at, NodeKind::Native);
                for a in args {
                    let s = self.read_local(*a);
                    self.edge_from(s, n);
                }
                if let Some(d) = dst {
                    self.write_local(*d, Sym::Node(n));
                }
            }
            Event::Spawn {
                at,
                dst,
                thread,
                args,
                ..
            } => {
                // Mirrors the live builder: the handle is a fresh value;
                // the actuals are stashed for the child thread's root
                // frame, which lives in another (later) segment.
                let n = self.ctx_node(*at, NodeKind::Plain);
                for (i, a) in args.iter().enumerate() {
                    let s = self.read_local(*a);
                    self.spawn_out.push((
                        Loc::SpawnArg {
                            thread: thread.0,
                            i: i as u16,
                        },
                        s,
                    ));
                }
                self.write_local(*dst, Sym::Node(n));
            }
            Event::Join {
                at, dst, thread, ..
            } => {
                // The child finished (and wrote its ThreadRet) in an
                // earlier segment — always an external read.
                let n = self.ctx_node(*at, NodeKind::Plain);
                self.edge_from(Sym::Init(Loc::ThreadRet(thread.0)), n);
                if let Some(d) = dst {
                    self.write_local(*d, Sym::Node(n));
                }
            }
            Event::Jump { .. } => {}
            Event::Phase { .. } => unreachable!("handled above"),
        }
    }

    fn frame_push(&mut self, info: &FrameInfo) {
        let parent = self.current_g();
        let site = info.receiver.and_then(|o| self.tag_of(o)).map(|t| t.site);
        let g = match site {
            Some(site) => extend_context(parent, site),
            None => parent,
        };
        let root = self.frames.is_empty();
        self.contexts.push(g);
        let mut vals = FxHashMap::default();
        for i in 0..info.num_args {
            let s = match &self.pending_args {
                // Root push: the formals are the actuals a `Spawn` in an
                // earlier segment stashed for this thread (none were
                // stashed for main's entry frame, which has no actuals).
                None if root => Sym::Init(Loc::SpawnArg {
                    thread: self.thread.0,
                    i,
                }),
                // Boundary push: the actuals were read by the `Call`
                // event at the end of the previous segment.
                None => Sym::Init(Loc::Arg(i)),
                Some(v) => v.get(i as usize).copied().unwrap_or(Sym::None),
            };
            vals.insert(i, s);
        }
        self.frames.push(SymFrame {
            gid: self.next_gid,
            outer: false,
            vals,
        });
        self.next_gid += 1;
        self.pending_args = Some(Vec::new());
    }

    fn frame_pop(&mut self) {
        self.frames.pop();
        self.contexts.pop();
        if self.frames.is_empty() {
            // Root pop: the thread finished; its return value becomes
            // visible to `Join`s in later segments.
            self.thread_ret = Some(std::mem::replace(&mut self.ret_stash, Sym::None));
        }
    }
}

// ---------------------------------------------------------------------------
// merge
// ---------------------------------------------------------------------------

fn resolve(
    sym: Sym,
    remap: &[NodeId],
    locs: &FxHashMap<Loc, Option<NodeId>>,
    args: &[Option<NodeId>],
) -> Option<NodeId> {
    match sym {
        Sym::None => None,
        Sym::Node(n) => Some(remap[n.index()]),
        Sym::Init(Loc::Arg(i)) => args.get(usize::from(i)).copied().flatten(),
        Sym::Init(loc) => locs.get(&loc).copied().flatten(),
    }
}

/// `args` is the owning thread's pending-argument stash — pending
/// arguments are thread-local, so the caller selects the slice by the
/// shard's thread.
fn lookup_loc(
    loc: Loc,
    locs: &FxHashMap<Loc, Option<NodeId>>,
    args: &[Option<NodeId>],
) -> Option<NodeId> {
    match loc {
        Loc::Arg(i) => args.get(usize::from(i)).copied().flatten(),
        _ => locs.get(&loc).copied().flatten(),
    }
}

/// Merges shard graphs (in segment order) into the final [`CostGraph`].
///
/// Nodes unite by their abstract key `(InstrId, CostElem)`: frequencies
/// sum, edges union, effects apply last-writer-wins in time order, and
/// each shard's external reads resolve against the accumulated
/// final-writes of all earlier shards. The result is identical to a
/// sequential build over the concatenated event stream.
pub fn merge_shards(shards: Vec<ShardGraph>) -> CostGraph {
    let mut merged: DepGraph<CostElem> = DepGraph::new();
    let mut effects: Vec<Option<HeapEffect>> = Vec::new();
    let mut ref_edges: FxHashSet<(NodeId, NodeId)> = FxHashSet::default();
    let mut alloc_nodes: FxHashMap<TaggedSite, NodeId> = FxHashMap::default();
    let mut points_to: FxHashMap<(TaggedSite, FieldKey), FxHashSet<TaggedSite>> =
        FxHashMap::default();
    let mut conflicts = ConflictStats::new();
    let mut instr_instances = 0u64;
    // Cumulative cross-shard shadow state: location → defining node.
    let mut locs: FxHashMap<Loc, Option<NodeId>> = FxHashMap::default();
    // Pending call arguments are thread-local: segments of other threads
    // interleave between a boundary `Call` and its `frame_push`, and
    // their calls must not clobber this thread's stash.
    let mut args_by_thread: FxHashMap<u32, Vec<Option<NodeId>>> = FxHashMap::default();
    let mut touched: FxHashMap<ObjectId, u32> = FxHashMap::default();

    for shard in shards {
        let args: Vec<Option<NodeId>> = args_by_thread
            .get(&shard.thread.0)
            .cloned()
            .unwrap_or_default();
        // 1. Intern this shard's nodes; frequencies of shared abstract
        //    nodes sum.
        let remap: Vec<NodeId> = shard
            .graph
            .iter()
            .map(|(_, n)| {
                let m = merged.intern(n.instr, n.elem, n.kind);
                merged.add_freq(m, n.freq);
                m
            })
            .collect();
        // 2. In-shard edges.
        for id in shard.graph.node_ids() {
            for &s in shard.graph.succs(id) {
                merged.add_edge(remap[id.index()], remap[s.index()]);
            }
        }
        // 3. External def-use edges resolve against pre-shard state.
        for &(loc, n) in &shard.ext_edges {
            if let Some(src) = lookup_loc(loc, &locs, &args) {
                merged.add_edge(src, remap[n.index()]);
            }
        }
        // 4. Reference and length edges.
        for (s, a) in shard.ref_edges {
            ref_edges.insert((remap[s.index()], remap[a.index()]));
        }
        for (n, tag) in shard.ext_ref_edges {
            if let Some(&alloc) = alloc_nodes.get(&tag) {
                ref_edges.insert((remap[n.index()], alloc));
            }
        }
        for (tag, n) in shard.ext_len_edges {
            if let Some(&alloc) = alloc_nodes.get(&tag) {
                merged.add_edge(alloc, remap[n.index()]);
            }
        }
        // 5. Allocation nodes become visible to later shards.
        for (tag, n) in shard.alloc_nodes {
            alloc_nodes.insert(tag, remap[n.index()]);
        }
        // 6. Effects: last Some in time order wins, exactly like the
        //    live profiler's overwriting `set_effect`.
        for (i, eff) in shard.effects.iter().enumerate() {
            if let Some(e) = eff {
                let m = remap[i];
                if effects.len() <= m.index() {
                    effects.resize(m.index() + 1, None);
                }
                effects[m.index()] = Some(*e);
            }
        }
        // 7. Order-insensitive unions.
        for (k, v) in shard.points_to {
            points_to.entry(k).or_default().extend(v);
        }
        conflicts.merge(shard.conflicts);
        instr_instances += shard.instr_instances;
        for (o, slots) in shard.heap_touch {
            let t = touched.entry(o).or_insert(0);
            *t = (*t).max(slots);
        }
        // 8. Advance the cumulative shadow state: resolve this shard's
        //    final writes against the *pre-shard* state, then apply.
        let updates: Vec<(Loc, Option<NodeId>)> = shard
            .final_locs
            .iter()
            .map(|&(loc, sym)| (loc, resolve(sym, &remap, &locs, &args)))
            .collect();
        let new_args = shard.final_args.map(|fa| {
            fa.iter()
                .map(|&s| resolve(s, &remap, &locs, &args))
                .collect()
        });
        for (loc, v) in updates {
            locs.insert(loc, v);
        }
        if let Some(a) = new_args {
            args_by_thread.insert(shard.thread.0, a);
        }
    }

    // Reproduce `ShadowHeap::approx_bytes` from the touch records: per
    // tracked object its slot-vector length, plus one tag per index up
    // to the highest tracked object.
    let slot_sz = std::mem::size_of::<Option<NodeId>>();
    let tag_sz = std::mem::size_of::<Option<TaggedSite>>();
    let max_idx = touched.keys().map(|o| o.index()).max();
    let shadow_heap_bytes = touched.values().map(|&l| l as usize).sum::<usize>() * slot_sz
        + max_idx.map_or(0, |m| (m + 1) * tag_sz);

    CostGraph::assemble(
        merged,
        ref_edges,
        effects,
        alloc_nodes,
        points_to,
        conflicts,
        instr_instances,
        shadow_heap_bytes,
    )
}

/// Builds the object table and every shard sequentially, then merges —
/// the single-threaded reference for the parallel driver in
/// `lowutil-par`, and the easiest way to replay shard-style in tests.
///
/// # Errors
/// Fails on a malformed trace.
pub fn sharded_replay_sequential(
    program: &Program,
    config: CostGraphConfig,
    reader: &TraceReader<'_>,
) -> Result<CostGraph, TraceError> {
    let ctx = ShardContext::new(program, config);
    let sites: Vec<_> = reader
        .segments()
        .iter()
        .map(scan_alloc_sites)
        .collect::<Result<_, _>>()?;
    let site_table = build_site_table(&sites);
    let gs: Vec<_> = reader
        .segments()
        .iter()
        .map(|s| scan_alloc_contexts(s, config.phase_limited, &site_table))
        .collect::<Result<_, _>>()?;
    let objects = build_object_table(&site_table, &gs);
    let shards: Vec<_> = reader
        .segments()
        .iter()
        .map(|s| build_shard(&ctx, &objects, s))
        .collect::<Result<_, _>>()?;
    Ok(merge_shards(shards))
}

// ---------------------------------------------------------------------------
// cross-session aggregation
// ---------------------------------------------------------------------------

/// A node's abstract identity — the key that makes shard union (and any
/// other merge) order-independent.
pub type AbstractNode = (InstrId, CostElem);

/// What one [`Aggregate::absorb`] actually changed, in abstract-node
/// terms — the contract between the aggregate and every incremental
/// consumer ([`crate::incr::IncrementalCsr`], the serve daemon's live
/// analyzer state). Callers that rebuilt the world from scratch can
/// instead patch exactly these entries.
///
/// Entries appear in absorption order of the session graph, which is
/// deterministic for a given session but *not* canonical; consumers
/// sort by canonical key where order matters.
#[derive(Debug, Default, Clone)]
pub struct AbsorbDelta {
    /// Frequency increments on nodes that already existed (zero
    /// increments are omitted).
    pub freq_adds: Vec<(AbstractNode, u64)>,
    /// Nodes this session introduced, with their kind and this
    /// session's frequency contribution.
    pub new_nodes: Vec<(AbstractNode, NodeKind, u64)>,
    /// Dependence edges not previously in the aggregate.
    pub new_edges: Vec<(AbstractNode, AbstractNode)>,
    /// Reference edges not previously in the aggregate.
    pub new_ref_edges: Vec<(AbstractNode, AbstractNode)>,
    /// Effects that were newly recorded or lowered by the rank-min
    /// merge (the final winning effect is stored).
    pub effects_set: Vec<(AbstractNode, HeapEffect)>,
    /// Points-to targets not previously observed for their key.
    pub new_points_to: Vec<((TaggedSite, FieldKey), TaggedSite)>,
    /// Increment to the aggregate's `instr_instances`.
    pub instr_instances: u64,
    /// Increment to the aggregate's `shadow_heap_bytes`.
    pub shadow_heap_bytes: usize,
    /// The session's executed-instruction total.
    pub instructions: u64,
}

impl AbsorbDelta {
    /// True when the absorb only bumped frequencies and scalar totals:
    /// no new nodes, edges, effects, or points-to facts. The common
    /// steady-state case for a long-lived tenant — every structure the
    /// workload can build has been seen, sessions only re-weigh it.
    pub fn is_freq_only(&self) -> bool {
        self.new_nodes.is_empty()
            && self.new_edges.is_empty()
            && self.new_ref_edges.is_empty()
            && self.effects_set.is_empty()
            && self.new_points_to.is_empty()
    }
}

/// A deterministic total order over heap effects, used when sessions
/// disagree about a node's effect. Within one trace, "last write wins"
/// reproduces the live profiler; across *concurrent sessions* there is
/// no meaningful "last", so the aggregate keeps the rank-minimal effect
/// instead — any fixed total order works, it only has to be the same
/// regardless of arrival interleaving. The rank mirrors the snapshot
/// store's record encoding `(tag, site, slot, field)`.
fn effect_rank(e: &HeapEffect) -> (u8, u32, u32, u32) {
    let field_rank = |f: &FieldKey| match f {
        FieldKey::Field(id) => id.0,
        FieldKey::Element => u32::MAX,
        FieldKey::Length => u32::MAX - 1,
    };
    match e {
        HeapEffect::Alloc { site } => (0, site.site.0, site.slot, 0),
        HeapEffect::Load { site, field } => (1, site.site.0, site.slot, field_rank(field)),
        HeapEffect::Store { site, field } => (2, site.site.0, site.slot, field_rank(field)),
        HeapEffect::LoadStatic(s) => (3, s.0, 0, 0),
        HeapEffect::StoreStatic(s) => (4, s.0, 0, 0),
    }
}

/// A commutative cross-session merge target: the per-tenant aggregate a
/// profiling service grows as completed sessions arrive.
///
/// Where [`merge_shards`] stitches the *segments of one trace* back
/// together (and needs their exact order to resolve cross-segment shadow
/// state), `Aggregate` combines *finished graphs of independent runs* of
/// the same program. Everything it keeps is keyed by abstract identity —
/// `(InstrId, CostElem)` nodes, abstract edge pairs, tagged sites — so
/// absorption is order-independent: any arrival interleaving of the same
/// session set produces a [`CostGraph`] with identical canonical bytes.
///
/// Absorbing a graph that is itself the aggregate of earlier sessions
/// (a reloaded snapshot) re-derives the same accumulators as absorbing
/// those sessions one by one: frequencies and instance counts sum, sets
/// union, and the effect order is associative. That is what makes
/// restart-from-snapshot sound: `agg(snapshot(agg(S1..Sk)), Sk+1..)`
/// hashes identically to `agg(S1..Sn)`.
///
/// Conflict statistics are merged while the aggregate lives in memory
/// but are not part of the canonical export, so they reset on restart
/// without affecting any content hash.
#[derive(Debug, Default)]
pub struct Aggregate {
    nodes: FxHashMap<AbstractNode, (NodeKind, u64)>,
    edges: FxHashSet<(AbstractNode, AbstractNode)>,
    ref_edges: FxHashSet<(AbstractNode, AbstractNode)>,
    effects: FxHashMap<AbstractNode, HeapEffect>,
    points_to: FxHashMap<(TaggedSite, FieldKey), FxHashSet<TaggedSite>>,
    conflicts: ConflictStats,
    instr_instances: u64,
    shadow_heap_bytes: usize,
    total_instructions: u64,
    sessions: u64,
}

impl Aggregate {
    /// An empty aggregate.
    pub fn new() -> Self {
        Self::default()
    }

    /// True until the first absorption.
    pub fn is_empty(&self) -> bool {
        self.sessions == 0
    }

    /// How many graphs have been absorbed.
    pub fn sessions(&self) -> u64 {
        self.sessions
    }

    /// Summed `instructions_executed` across absorbed sessions — the
    /// denominator for dead-value percentages over the aggregate.
    pub fn total_instructions(&self) -> u64 {
        self.total_instructions
    }

    /// Folds one session's finished graph (or a reloaded aggregate
    /// snapshot) into the accumulators. `instructions` is the session's
    /// executed-instruction total (a snapshot's `total_instructions`).
    ///
    /// Returns the [`AbsorbDelta`] describing exactly what changed, so
    /// incremental consumers patch rather than re-derive. The aggregate
    /// state after this call is identical whether or not the delta is
    /// used — callers that rebuild from scratch may simply drop it.
    pub fn absorb(&mut self, g: &CostGraph, instructions: u64) -> AbsorbDelta {
        use std::collections::hash_map::Entry;
        let mut delta = AbsorbDelta {
            instr_instances: g.instr_instances(),
            shadow_heap_bytes: g.shadow_heap_bytes(),
            instructions,
            ..AbsorbDelta::default()
        };
        let dep = g.graph();
        let key = |id: NodeId| {
            let n = dep.node(id);
            (n.instr, n.elem)
        };
        for (id, n) in dep.iter() {
            let k = (n.instr, n.elem);
            match self.nodes.entry(k) {
                Entry::Occupied(mut e) => {
                    debug_assert_eq!(
                        e.get().0,
                        n.kind,
                        "node kind is a function of the instruction"
                    );
                    e.get_mut().1 += n.freq;
                    if n.freq > 0 {
                        delta.freq_adds.push((k, n.freq));
                    }
                }
                Entry::Vacant(e) => {
                    e.insert((n.kind, n.freq));
                    delta.new_nodes.push((k, n.kind, n.freq));
                }
            }
            if let Some(eff) = g.effect(id) {
                match self.effects.entry(k) {
                    Entry::Occupied(mut e) => {
                        if effect_rank(eff) < effect_rank(e.get()) {
                            *e.get_mut() = *eff;
                            delta.effects_set.push((k, *eff));
                        }
                    }
                    Entry::Vacant(e) => {
                        e.insert(*eff);
                        delta.effects_set.push((k, *eff));
                    }
                }
            }
        }
        for id in dep.node_ids() {
            for &s in dep.succs(id) {
                let e = (key(id), key(s));
                if self.edges.insert(e) {
                    delta.new_edges.push(e);
                }
            }
        }
        for (a, b) in g.ref_edges() {
            let e = (key(a), key(b));
            if self.ref_edges.insert(e) {
                delta.new_ref_edges.push(e);
            }
        }
        for (k, v) in g.points_to_raw() {
            let set = self.points_to.entry(*k).or_default();
            for &t in v {
                if set.insert(t) {
                    delta.new_points_to.push((*k, t));
                }
            }
        }
        self.conflicts.merge_from(g.conflicts());
        self.instr_instances += g.instr_instances();
        self.shadow_heap_bytes += g.shadow_heap_bytes();
        self.total_instructions += instructions;
        self.sessions += 1;
        delta
    }

    /// Number of abstract nodes accumulated so far.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Summed instruction instances across absorbed sessions.
    pub fn instr_instances(&self) -> u64 {
        self.instr_instances
    }

    /// Summed end-of-run shadow-heap bytes across absorbed sessions.
    pub fn shadow_heap_bytes(&self) -> usize {
        self.shadow_heap_bytes
    }

    /// The raw node accumulator, for incremental consumers.
    pub(crate) fn nodes_map(&self) -> &FxHashMap<AbstractNode, (NodeKind, u64)> {
        &self.nodes
    }

    /// The raw edge accumulator, for incremental consumers.
    pub(crate) fn edges_set(&self) -> &FxHashSet<(AbstractNode, AbstractNode)> {
        &self.edges
    }

    /// The raw reference-edge accumulator, for incremental consumers.
    pub(crate) fn ref_edges_set(&self) -> &FxHashSet<(AbstractNode, AbstractNode)> {
        &self.ref_edges
    }

    /// The raw effect accumulator, for incremental consumers.
    pub(crate) fn effects_map(&self) -> &FxHashMap<AbstractNode, HeapEffect> {
        &self.effects
    }

    /// The raw points-to accumulator, for incremental consumers.
    pub(crate) fn points_to_map(
        &self,
    ) -> &FxHashMap<(TaggedSite, FieldKey), FxHashSet<TaggedSite>> {
        &self.points_to
    }

    /// Materializes the aggregate as a [`CostGraph`], interning nodes in
    /// canonical `(method, pc, elem)` order and inserting edges sorted,
    /// so equal accumulator contents produce equal graphs however they
    /// were reached.
    pub fn to_cost_graph(&self) -> CostGraph {
        let mut order: Vec<AbstractNode> = self.nodes.keys().copied().collect();
        order.sort_unstable_by_key(|&(instr, elem)| {
            (instr.method.0, instr.pc, crate::export::elem_rank(elem))
        });
        let mut graph: DepGraph<CostElem> = DepGraph::new();
        let mut ids: FxHashMap<AbstractNode, NodeId> = FxHashMap::default();
        for &k in &order {
            let (kind, freq) = self.nodes[&k];
            let id = graph.intern(k.0, k.1, kind);
            graph.add_freq(id, freq);
            ids.insert(k, id);
        }
        let mut edges: Vec<(NodeId, NodeId)> = self
            .edges
            .iter()
            .map(|&(a, b)| (ids[&a], ids[&b]))
            .collect();
        edges.sort_unstable();
        for (a, b) in edges {
            graph.add_edge(a, b);
        }
        let ref_edges: FxHashSet<(NodeId, NodeId)> = self
            .ref_edges
            .iter()
            .map(|&(a, b)| (ids[&a], ids[&b]))
            .collect();
        let mut effects: Vec<Option<HeapEffect>> = vec![None; graph.num_nodes()];
        let mut alloc_nodes: FxHashMap<TaggedSite, NodeId> = FxHashMap::default();
        for (k, eff) in &self.effects {
            let id = ids[k];
            effects[id.index()] = Some(*eff);
            if let HeapEffect::Alloc { site } = eff {
                alloc_nodes.insert(*site, id);
            }
        }
        CostGraph::assemble(
            graph,
            ref_edges,
            effects,
            alloc_nodes,
            self.points_to.clone(),
            self.conflicts.clone(),
            self.instr_instances,
            self.shadow_heap_bytes,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::write_cost_graph;
    use crate::gcost::GraphBuilder;
    use lowutil_ir::parse_program;
    use lowutil_vm::trace::TraceWriter;
    use lowutil_vm::{SinkTracer, Vm};

    /// Serializes canonically for byte comparison.
    fn bytes_of(g: &CostGraph) -> Vec<u8> {
        let mut buf = Vec::new();
        write_cost_graph(g, &mut buf).unwrap();
        buf
    }

    /// Runs live (profiling + recording simultaneously), then checks the
    /// sequential replay and the sharded replay against the live graph,
    /// byte for byte, at the given segment limit.
    fn assert_identity(src: &str, config: CostGraphConfig, limit: usize) -> usize {
        let p = parse_program(src).expect("parse");
        let mut builder = GraphBuilder::new(&p, config);
        let mut writer = TraceWriter::with_segment_limit(Vec::new(), limit);
        {
            let mut tracer = SinkTracer((&mut builder, &mut writer));
            Vm::new(&p).run(&mut tracer).expect("program runs");
        }
        let live = bytes_of(&builder.finish());
        let (trace, _) = writer.finish().unwrap();

        let reader = TraceReader::new(&trace).expect("trace parses");
        let seq = bytes_of(&replay_cost_graph(&p, config, &reader).unwrap());
        assert_eq!(
            String::from_utf8_lossy(&live),
            String::from_utf8_lossy(&seq),
            "sequential replay != live"
        );
        let sharded = bytes_of(&sharded_replay_sequential(&p, config, &reader).unwrap());
        assert_eq!(
            String::from_utf8_lossy(&live),
            String::from_utf8_lossy(&sharded),
            "sharded replay != live"
        );
        reader.segments().len()
    }

    const CROSS_SEGMENT_SRC: &str = r#"
native print/1
class A { f }
class Box { v }
method main/0 {
  x = 1
  a1 = new A
  a1.f = x
  a2 = new A
  a2.f = x
  i = 0
  one = 1
  lim = 6
loop:
  if i >= lim goto done
  r1 = vcall get(a1)
  r2 = vcall get(a2)
  b = new Box
  b.v = r1
  t = b.v
  s = call sum(r1, t)
  i = i + one
  goto loop
done:
  native print(s)
  return
}
method A.get/0 {
  r = this.f
  return r
}
method sum/2 {
  r = p0 + p1
  return r
}
"#;

    #[test]
    fn sharded_build_matches_live_across_segment_limits() {
        for limit in [2, 5, 16, 4096] {
            let segs = assert_identity(CROSS_SEGMENT_SRC, CostGraphConfig::default(), limit);
            if limit == 2 {
                assert!(segs > 4, "tiny limit must produce many segments");
            }
        }
    }

    #[test]
    fn sharded_build_matches_live_with_ablation_configs() {
        for config in [
            CostGraphConfig {
                slots: 8,
                ..CostGraphConfig::default()
            },
            CostGraphConfig {
                traditional_uses: true,
                ..CostGraphConfig::default()
            },
            CostGraphConfig {
                control_edges: true,
                ..CostGraphConfig::default()
            },
            CostGraphConfig {
                dense_interning: false,
                ..CostGraphConfig::default()
            },
            CostGraphConfig {
                track_conflicts: false,
                ..CostGraphConfig::default()
            },
            CostGraphConfig {
                inline_caches: false,
                ..CostGraphConfig::default()
            },
        ] {
            assert_identity(CROSS_SEGMENT_SRC, config, 3);
        }
    }

    /// A race-free fork-join program with cross-thread flow in every
    /// direction trace v3 can express: spawn arguments (the box refs),
    /// heap hand-off (children write, main reads after join), and
    /// thread return values.
    const THREADED_SRC: &str = r#"
native print/1
class Box { v }
method main/0 {
  b1 = new Box
  b2 = new Box
  t1 = spawn fill(b1)
  t2 = spawn fill(b2)
  r1 = join t1
  r2 = join t2
  x = b1.v
  y = b2.v
  s1 = x + y
  s2 = r1 + r2
  s = s1 + s2
  native print(s)
  return
}
method fill/1 {
  i = 0
  one = 1
  lim = 9
loop:
  if i >= lim goto done
  p0.v = i
  i = i + one
  goto loop
done:
  r = p0.v
  return r
}
"#;

    /// Live-profiles + records under one scheduler seed, then checks
    /// sequential replay and sharded replay against the live graph byte
    /// for byte. Returns the live bytes for cross-seed comparison.
    fn threaded_identity(config: CostGraphConfig, limit: usize, sched_seed: u64) -> Vec<u8> {
        let p = parse_program(THREADED_SRC).expect("parse");
        let mut builder = GraphBuilder::new(&p, config);
        let mut writer = TraceWriter::with_segment_limit(Vec::new(), limit);
        {
            let mut tracer = SinkTracer((&mut builder, &mut writer));
            let rc = lowutil_vm::RunConfig {
                sched_seed,
                ..lowutil_vm::RunConfig::default()
            };
            lowutil_vm::Vm::with_config(&p, rc)
                .run(&mut tracer)
                .expect("program runs");
        }
        let live = bytes_of(&builder.finish());
        let (trace, _) = writer.finish().unwrap();
        let reader = TraceReader::new(&trace).expect("trace parses");
        let seq = bytes_of(&replay_cost_graph(&p, config, &reader).unwrap());
        assert_eq!(
            String::from_utf8_lossy(&live),
            String::from_utf8_lossy(&seq),
            "sequential replay != live (limit {limit}, seed {sched_seed})"
        );
        let sharded = bytes_of(&sharded_replay_sequential(&p, config, &reader).unwrap());
        assert_eq!(
            String::from_utf8_lossy(&live),
            String::from_utf8_lossy(&sharded),
            "sharded replay != live (limit {limit}, seed {sched_seed})"
        );
        live
    }

    #[test]
    fn multithreaded_sharded_build_matches_live_across_limits() {
        for limit in [2, 7, 64, 4096] {
            threaded_identity(CostGraphConfig::default(), limit, 0);
        }
    }

    #[test]
    fn multithreaded_graphs_are_schedule_independent() {
        // Same canonical bytes whatever interleaving the scheduler
        // picks, and whatever segment size the writer splits at.
        let reference = threaded_identity(CostGraphConfig::default(), 5, 0);
        for seed in [1, 7, 0xDEAD_BEEF] {
            for limit in [3, 4096] {
                let b = threaded_identity(CostGraphConfig::default(), limit, seed);
                assert_eq!(
                    String::from_utf8_lossy(&reference),
                    String::from_utf8_lossy(&b),
                    "seed {seed} limit {limit} changed the canonical graph"
                );
            }
        }
    }

    #[test]
    fn multithreaded_sharded_build_matches_live_with_ablations() {
        for config in [
            CostGraphConfig {
                slots: 8,
                ..CostGraphConfig::default()
            },
            CostGraphConfig {
                traditional_uses: true,
                ..CostGraphConfig::default()
            },
            CostGraphConfig {
                control_edges: true,
                ..CostGraphConfig::default()
            },
            CostGraphConfig {
                dense_interning: false,
                ..CostGraphConfig::default()
            },
            CostGraphConfig {
                inline_caches: false,
                ..CostGraphConfig::default()
            },
        ] {
            threaded_identity(config, 4, 3);
        }
    }

    #[test]
    fn sharded_build_matches_live_under_phase_limiting() {
        let src = r#"
native phase_begin/0
native phase_end/0
native print/1
class Box { v }
method main/0 {
  warm = 10
  b = new Box
  b.v = warm
  native phase_begin()
  x = 1
  c = new Box
  c.v = x
  y = c.v
  z = call double(y)
  native phase_end()
  dead = 5
  native phase_begin()
  w = call double(z)
  native phase_end()
  native print(w)
  return
}
method double/1 {
  r = p0 + p0
  return r
}
"#;
        let config = CostGraphConfig {
            phase_limited: true,
            ..CostGraphConfig::default()
        };
        for limit in [1, 2, 64] {
            assert_identity(src, config, limit);
        }
    }
    /// Records one trace of `CROSS_SEGMENT_SRC` and derives three
    /// distinct "sessions" of the same program from it: the full run
    /// plus two salvaged prefixes of different lengths.
    fn session_graphs() -> Vec<(CostGraph, u64)> {
        let p = parse_program(CROSS_SEGMENT_SRC).expect("parse");
        let config = CostGraphConfig::default();
        let writer = TraceWriter::with_segment_limit(Vec::new(), 2);
        let mut t = SinkTracer(writer);
        Vm::new(&p).run(&mut t).expect("program runs");
        let (trace, _) = t.0.finish().unwrap();

        let mut sessions = Vec::new();
        let full = TraceReader::new(&trace).expect("trace parses");
        sessions.push((
            replay_cost_graph(&p, config, &full).unwrap(),
            full.trailer().instructions,
        ));
        for cut in [trace.len() * 2 / 5, trace.len() * 4 / 5] {
            let (reader, _) = TraceReader::salvage(&trace[..cut]).expect("header intact");
            assert!(reader.segments().len() > 1, "cut {cut} keeps a real prefix");
            sessions.push((
                replay_cost_graph(&p, config, &reader).unwrap(),
                reader.trailer().instructions,
            ));
        }
        // The three sessions are genuinely different graphs.
        let bytes: Vec<_> = sessions.iter().map(|(g, _)| bytes_of(g)).collect();
        assert!(bytes[0] != bytes[1] && bytes[1] != bytes[2] && bytes[0] != bytes[2]);
        sessions
    }

    /// An aggregate of one session is that session's graph, byte for
    /// byte — absorption loses nothing.
    #[test]
    fn aggregate_of_one_session_reproduces_its_graph() {
        for (g, instructions) in session_graphs() {
            let mut agg = Aggregate::new();
            assert!(agg.is_empty());
            agg.absorb(&g, instructions);
            assert_eq!(agg.sessions(), 1);
            assert_eq!(agg.total_instructions(), instructions);
            assert_eq!(bytes_of(&agg.to_cost_graph()), bytes_of(&g));
        }
    }

    /// Absorbing the same session set in every arrival order produces
    /// identical canonical bytes — the property that lets a concurrent
    /// ingest daemon match an offline sequential merge.
    #[test]
    fn aggregate_absorb_is_order_independent() {
        let sessions = session_graphs();
        let mut exports: Vec<Vec<u8>> = Vec::new();
        for perm in [
            [0, 1, 2],
            [0, 2, 1],
            [1, 0, 2],
            [1, 2, 0],
            [2, 0, 1],
            [2, 1, 0],
        ] {
            let mut agg = Aggregate::new();
            for &i in &perm {
                let (g, instructions) = &sessions[i];
                agg.absorb(g, *instructions);
            }
            assert_eq!(agg.sessions(), 3);
            exports.push(bytes_of(&agg.to_cost_graph()));
        }
        for e in &exports[1..] {
            assert_eq!(
                String::from_utf8_lossy(&exports[0]),
                String::from_utf8_lossy(e),
                "absorption order changed the aggregate"
            );
        }
    }

    /// Absorbing a previously materialized aggregate (the restart path:
    /// a reloaded snapshot) then more sessions equals absorbing every
    /// session directly.
    #[test]
    fn aggregate_restart_roundtrip_matches_direct_merge() {
        let sessions = session_graphs();
        let mut direct = Aggregate::new();
        for (g, instructions) in &sessions {
            direct.absorb(g, *instructions);
        }

        let mut first = Aggregate::new();
        first.absorb(&sessions[0].0, sessions[0].1);
        first.absorb(&sessions[1].0, sessions[1].1);
        let persisted = first.to_cost_graph();
        let mut resumed = Aggregate::new();
        resumed.absorb(&persisted, first.total_instructions());
        resumed.absorb(&sessions[2].0, sessions[2].1);

        assert_eq!(resumed.total_instructions(), direct.total_instructions());
        assert_eq!(
            String::from_utf8_lossy(&bytes_of(&direct.to_cost_graph())),
            String::from_utf8_lossy(&bytes_of(&resumed.to_cost_graph())),
            "restart-from-aggregate diverged from the direct merge"
        );
    }
}
