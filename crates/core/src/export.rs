//! Serialization of finished cost graphs.
//!
//! The paper's §3.2 points out that the client analyses "could easily be
//! migrated to an offline heap analysis tool … the JVM only needs to
//! write `G_cost` to external storage". This module provides that
//! boundary: a compact line-oriented text format with a lossless
//! round-trip ([`write_cost_graph`] / [`read_cost_graph`]), and Graphviz
//! DOT output for visual inspection ([`write_dot`]).
//!
//! Format (one record per line, `#`-prefixed comments ignored):
//!
//! ```text
//! gcost 1                            header, format version
//! meta <instr_instances> <shadow_heap_bytes>
//! node <id> <method> <pc> <elem> <kind> <freq>   elem: cN | -
//! edge <from> <to>
//! refedge <store> <alloc>
//! effect <node> alloc <site> <slot>
//! effect <node> load|store <site> <slot> <field>  field: fN | elm | len
//! effect <node> loadstatic|storestatic <static>
//! pointsto <site> <slot> <field> <site2> <slot2>
//! ```

use crate::gcost::{CostElem, CostGraph, FieldKey, HeapEffect, TaggedSite};
use crate::graph::{DepGraph, NodeId, NodeKind};
use lowutil_ir::{AllocSiteId, FieldId, InstrId, MethodId, Program, StaticId};
use std::collections::{HashMap, HashSet};
use std::error::Error;
use std::fmt;
use std::io::{self, BufRead, Write};

/// A malformed record encountered while reading a serialized graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadError {
    /// 1-based line number.
    pub line: usize,
    /// What was wrong.
    pub message: String,
}

impl fmt::Display for ReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ReadError {}

pub(crate) fn field_key_token(f: FieldKey) -> String {
    match f {
        FieldKey::Field(id) => format!("f{}", id.0),
        FieldKey::Element => "elm".to_string(),
        FieldKey::Length => "len".to_string(),
    }
}

fn parse_field_key(tok: &str) -> Option<FieldKey> {
    match tok {
        "elm" => Some(FieldKey::Element),
        "len" => Some(FieldKey::Length),
        _ => tok
            .strip_prefix('f')
            .and_then(|n| n.parse().ok())
            .map(|n| FieldKey::Field(FieldId(n))),
    }
}

pub(crate) fn kind_token(k: NodeKind) -> &'static str {
    match k {
        NodeKind::Plain => "plain",
        NodeKind::Alloc => "alloc",
        NodeKind::HeapLoad => "load",
        NodeKind::HeapStore => "store",
        NodeKind::Predicate => "pred",
        NodeKind::Native => "native",
    }
}

fn parse_kind(tok: &str) -> Option<NodeKind> {
    Some(match tok {
        "plain" => NodeKind::Plain,
        "alloc" => NodeKind::Alloc,
        "load" => NodeKind::HeapLoad,
        "store" => NodeKind::HeapStore,
        "pred" => NodeKind::Predicate,
        "native" => NodeKind::Native,
        _ => return None,
    })
}

/// The total order serialization uses: nodes sort by `(instr, elem)`,
/// with `NoCtx` ranking before any context slot. This is also the
/// on-disk integer encoding of an elem in snapshot format v1.
pub fn elem_rank(e: CostElem) -> u64 {
    match e {
        CostElem::NoCtx => 0,
        CostElem::Ctx(s) => u64::from(s) + 1,
    }
}

/// The canonical node order shared by the text export and the binary
/// snapshot store: nodes sorted by `(method, pc, elem)`. Both formats
/// renumber through this one function so their content hashes can never
/// disagree about node identity.
pub fn canonical_order(g: &DepGraph<CostElem>) -> Vec<NodeId> {
    let mut order: Vec<NodeId> = g.node_ids().collect();
    order.sort_unstable_by_key(|&id| {
        let n = g.node(id);
        (n.instr.method.0, n.instr.pc, elem_rank(n.elem))
    });
    order
}

/// Writes one canonical `node` record — the single source of the line
/// format, shared with the incremental writer
/// ([`crate::incr::IncrementalCsr`]).
pub(crate) fn write_node_line<W: Write>(
    mut w: W,
    id: u32,
    instr: InstrId,
    elem: CostElem,
    kind: NodeKind,
    freq: u64,
) -> io::Result<()> {
    let elem = match elem {
        CostElem::Ctx(s) => format!("c{s}"),
        CostElem::NoCtx => "-".to_string(),
    };
    writeln!(
        w,
        "node {} {} {} {} {} {}",
        id,
        instr.method.0,
        instr.pc,
        elem,
        kind_token(kind),
        freq
    )
}

/// Writes one canonical `effect` record (shared with the incremental
/// writer).
pub(crate) fn write_effect_line<W: Write>(mut w: W, id: u32, e: &HeapEffect) -> io::Result<()> {
    match e {
        HeapEffect::Alloc { site } => {
            writeln!(w, "effect {} alloc {} {}", id, site.site.0, site.slot)
        }
        HeapEffect::Load { site, field } => writeln!(
            w,
            "effect {} load {} {} {}",
            id,
            site.site.0,
            site.slot,
            field_key_token(*field)
        ),
        HeapEffect::Store { site, field } => writeln!(
            w,
            "effect {} store {} {} {}",
            id,
            site.site.0,
            site.slot,
            field_key_token(*field)
        ),
        HeapEffect::LoadStatic(s) => writeln!(w, "effect {} loadstatic {}", id, s.0),
        HeapEffect::StoreStatic(s) => writeln!(w, "effect {} storestatic {}", id, s.0),
    }
}

/// Writes one canonical `pointsto` record (shared with the incremental
/// writer).
pub(crate) fn write_pointsto_line<W: Write>(
    mut w: W,
    site: TaggedSite,
    field: FieldKey,
    target: TaggedSite,
) -> io::Result<()> {
    writeln!(
        w,
        "pointsto {} {} {} {} {}",
        site.site.0,
        site.slot,
        field_key_token(field),
        target.site.0,
        target.slot
    )
}

/// Writes a finished graph to the compact text format.
///
/// The output is *canonical*: nodes are sorted by `(method, pc, elem)`
/// and renumbered, and edge/reference-edge records are sorted, so two
/// graphs with the same abstract content serialize to identical bytes
/// regardless of construction order. This is what makes "live == replayed
/// == shard-merged" checkable by byte comparison.
///
/// # Errors
/// Propagates I/O errors from the writer.
pub fn write_cost_graph<W: Write>(gcost: &CostGraph, mut w: W) -> io::Result<()> {
    writeln!(w, "gcost 1")?;
    writeln!(
        w,
        "meta {} {}",
        gcost.instr_instances(),
        gcost.shadow_heap_bytes()
    )?;
    let g = gcost.graph();
    let order = canonical_order(g);
    // old id -> canonical id
    let mut canon = vec![0u32; g.num_nodes()];
    for (new, &old) in order.iter().enumerate() {
        canon[old.index()] = new as u32;
    }
    for (new, &old) in order.iter().enumerate() {
        let n = g.node(old);
        write_node_line(&mut w, new as u32, n.instr, n.elem, n.kind, n.freq)?;
    }
    let canon = &canon;
    let mut edges: Vec<(u32, u32)> = g
        .node_ids()
        .flat_map(|id| {
            g.succs(id)
                .iter()
                .map(move |&s| (canon[id.index()], canon[s.index()]))
        })
        .collect();
    edges.sort_unstable();
    for (a, b) in edges {
        writeln!(w, "edge {a} {b}")?;
    }
    let mut ref_edges: Vec<(u32, u32)> = gcost
        .ref_edges()
        .map(|(s, a)| (canon[s.index()], canon[a.index()]))
        .collect();
    ref_edges.sort_unstable();
    for (s, a) in ref_edges {
        writeln!(w, "refedge {s} {a}")?;
    }
    for &old in &order {
        let id = NodeId(canon[old.index()]);
        if let Some(e) = gcost.effect(old) {
            write_effect_line(&mut w, id.0, e)?;
        }
    }
    for site in gcost.objects() {
        for field in gcost.fields_of(site) {
            for target in gcost.points_to(site, field) {
                write_pointsto_line(&mut w, site, field, target)?;
            }
        }
    }
    Ok(())
}

/// Reads a graph previously written by [`write_cost_graph`].
///
/// # Errors
/// Returns a [`ReadError`] describing the first malformed record.
pub fn read_cost_graph<R: BufRead>(r: R) -> Result<CostGraph, ReadError> {
    let mut graph: DepGraph<CostElem> = DepGraph::new();
    let mut freqs: HashMap<NodeId, u64> = HashMap::new();
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut ref_edges: HashSet<(NodeId, NodeId)> = HashSet::new();
    let mut effects: HashMap<NodeId, HeapEffect> = HashMap::new();
    let mut points_to: HashMap<(TaggedSite, FieldKey), HashSet<TaggedSite>> = HashMap::new();
    let mut id_map: HashMap<u32, NodeId> = HashMap::new();
    let mut instr_instances = 0u64;
    let mut shadow_bytes = 0usize;
    let mut saw_header = false;

    let err = |line: usize, message: &str| ReadError {
        line,
        message: message.to_string(),
    };

    for (i, line) in r.lines().enumerate() {
        let ln = i + 1;
        let line = line.map_err(|e| err(ln, &format!("io error: {e}")))?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let toks: Vec<&str> = line.split_whitespace().collect();
        match toks[0] {
            "gcost" => {
                if toks.get(1) != Some(&"1") {
                    return Err(err(ln, "unsupported format version"));
                }
                saw_header = true;
            }
            _ if !saw_header => return Err(err(ln, "missing `gcost` header")),
            "meta" => {
                instr_instances = toks
                    .get(1)
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| err(ln, "bad meta"))?;
                shadow_bytes = toks
                    .get(2)
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| err(ln, "bad meta"))?;
            }
            "node" => {
                if toks.len() != 7 {
                    return Err(err(ln, "node needs 6 fields"));
                }
                let ext: u32 = toks[1].parse().map_err(|_| err(ln, "bad node id"))?;
                let method: u32 = toks[2].parse().map_err(|_| err(ln, "bad method"))?;
                let pc: u32 = toks[3].parse().map_err(|_| err(ln, "bad pc"))?;
                let elem = if toks[4] == "-" {
                    CostElem::NoCtx
                } else {
                    let s = toks[4]
                        .strip_prefix('c')
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| err(ln, "bad elem"))?;
                    CostElem::Ctx(s)
                };
                let kind = parse_kind(toks[5]).ok_or_else(|| err(ln, "bad kind"))?;
                let freq: u64 = toks[6].parse().map_err(|_| err(ln, "bad freq"))?;
                let id = graph.intern(InstrId::new(MethodId(method), pc), elem, kind);
                freqs.insert(id, freq);
                id_map.insert(ext, id);
            }
            "edge" | "refedge" => {
                if toks.len() != 3 {
                    return Err(err(ln, "edge needs 2 fields"));
                }
                let a: u32 = toks[1].parse().map_err(|_| err(ln, "bad edge"))?;
                let b: u32 = toks[2].parse().map_err(|_| err(ln, "bad edge"))?;
                if toks[0] == "edge" {
                    edges.push((a, b));
                } else {
                    let (na, nb) = (
                        *id_map.get(&a).ok_or_else(|| err(ln, "unknown node"))?,
                        *id_map.get(&b).ok_or_else(|| err(ln, "unknown node"))?,
                    );
                    ref_edges.insert((na, nb));
                }
            }
            "effect" => {
                let id: u32 = toks
                    .get(1)
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| err(ln, "bad effect node"))?;
                let node = *id_map.get(&id).ok_or_else(|| err(ln, "unknown node"))?;
                let eff = match toks.get(2).copied() {
                    Some("alloc") => HeapEffect::Alloc {
                        site: parse_site(&toks, 3).ok_or_else(|| err(ln, "bad site"))?,
                    },
                    Some("load") => HeapEffect::Load {
                        site: parse_site(&toks, 3).ok_or_else(|| err(ln, "bad site"))?,
                        field: toks
                            .get(5)
                            .and_then(|t| parse_field_key(t))
                            .ok_or_else(|| err(ln, "bad field"))?,
                    },
                    Some("store") => HeapEffect::Store {
                        site: parse_site(&toks, 3).ok_or_else(|| err(ln, "bad site"))?,
                        field: toks
                            .get(5)
                            .and_then(|t| parse_field_key(t))
                            .ok_or_else(|| err(ln, "bad field"))?,
                    },
                    Some("loadstatic") => HeapEffect::LoadStatic(StaticId(
                        toks.get(3)
                            .and_then(|t| t.parse().ok())
                            .ok_or_else(|| err(ln, "bad static"))?,
                    )),
                    Some("storestatic") => HeapEffect::StoreStatic(StaticId(
                        toks.get(3)
                            .and_then(|t| t.parse().ok())
                            .ok_or_else(|| err(ln, "bad static"))?,
                    )),
                    _ => return Err(err(ln, "bad effect kind")),
                };
                effects.insert(node, eff);
            }
            "pointsto" => {
                let site = parse_site(&toks, 1).ok_or_else(|| err(ln, "bad site"))?;
                let field = toks
                    .get(3)
                    .and_then(|t| parse_field_key(t))
                    .ok_or_else(|| err(ln, "bad field"))?;
                let target = parse_site(&toks, 4).ok_or_else(|| err(ln, "bad site"))?;
                points_to.entry((site, field)).or_default().insert(target);
            }
            other => return Err(err(ln, &format!("unknown record `{other}`"))),
        }
    }
    if !saw_header {
        return Err(err(0, "empty input"));
    }

    for (a, b) in edges {
        let (na, nb) = (
            *id_map
                .get(&a)
                .ok_or_else(|| err(0, "edge to unknown node"))?,
            *id_map
                .get(&b)
                .ok_or_else(|| err(0, "edge to unknown node"))?,
        );
        graph.add_edge(na, nb);
    }
    for (id, freq) in freqs {
        graph.set_freq(id, freq);
    }

    Ok(CostGraph::from_parts(
        graph,
        ref_edges,
        effects,
        points_to,
        instr_instances,
        shadow_bytes,
    ))
}

fn parse_site(toks: &[&str], at: usize) -> Option<TaggedSite> {
    Some(TaggedSite {
        site: AllocSiteId(toks.get(at)?.parse().ok()?),
        slot: toks.get(at + 1)?.parse().ok()?,
    })
}

/// Writes the graph as Graphviz DOT, with source labels resolved against
/// `program` when supplied.
///
/// # Errors
/// Propagates I/O errors from the writer.
pub fn write_dot<W: Write>(
    gcost: &CostGraph,
    program: Option<&Program>,
    mut w: W,
) -> io::Result<()> {
    writeln!(w, "digraph gcost {{")?;
    writeln!(w, "  rankdir=TB; node [fontsize=10];")?;
    let g = gcost.graph();
    for (id, n) in g.iter() {
        let label = match program {
            Some(p) => format!("{}{} x{}", p.instr_label(n.instr), n.elem, n.freq),
            None => format!("{}{} x{}", n.instr, n.elem, n.freq),
        };
        let shape = match n.kind {
            NodeKind::Alloc => "shape=box, peripheries=2",
            NodeKind::HeapStore => "shape=box",
            NodeKind::HeapLoad => "shape=ellipse, style=bold",
            NodeKind::Predicate => "shape=diamond",
            NodeKind::Native => "shape=house",
            NodeKind::Plain => "shape=plaintext",
        };
        writeln!(w, "  n{} [label=\"{}\", {}];", id.0, label, shape)?;
    }
    for id in g.node_ids() {
        for &s in g.succs(id) {
            writeln!(w, "  n{} -> n{};", id.0, s.0)?;
        }
    }
    for (s, a) in gcost.ref_edges() {
        writeln!(w, "  n{} -> n{} [style=dashed, color=gray];", s.0, a.0)?;
    }
    writeln!(w, "}}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gcost::{CostGraphConfig, CostProfiler};
    use lowutil_ir::parse_program;
    use lowutil_vm::Vm;

    fn sample_graph() -> (Program, CostGraph) {
        let p = parse_program(
            r#"
native print/1
class Box { v }
method main/0 {
  b = new Box
  x = 41
  one = 1
  y = x + one
  b.v = y
  z = b.v
  native print(z)
  return
}
"#,
        )
        .unwrap();
        let mut prof = CostProfiler::new(&p, CostGraphConfig::default());
        Vm::new(&p).run(&mut prof).unwrap();
        (p, prof.finish())
    }

    #[test]
    fn text_round_trip_is_lossless() {
        let (_, g) = sample_graph();
        let mut buf = Vec::new();
        write_cost_graph(&g, &mut buf).unwrap();
        let g2 = read_cost_graph(buf.as_slice()).unwrap();

        assert_eq!(g.graph().num_nodes(), g2.graph().num_nodes());
        assert_eq!(g.graph().num_edges(), g2.graph().num_edges());
        assert_eq!(g.ref_edges().count(), g2.ref_edges().count());
        assert_eq!(g.instr_instances(), g2.instr_instances());
        assert_eq!(g.objects(), g2.objects());
        // Per-node payloads survive keyed by (instr, elem).
        for (_, n) in g.graph().iter() {
            let id2 = g2
                .graph()
                .find(n.instr, &n.elem)
                .expect("node survives round trip");
            let n2 = g2.graph().node(id2);
            assert_eq!(n.freq, n2.freq);
            assert_eq!(n.kind, n2.kind);
        }
        // Field indexes rebuilt from effects.
        for site in g.objects() {
            assert_eq!(g.fields_of(site), g2.fields_of(site));
            for f in g.fields_of(site) {
                assert_eq!(g.writes_of(site, f).len(), g2.writes_of(site, f).len());
                assert_eq!(g.points_to(site, f), g2.points_to(site, f));
            }
        }
    }

    #[test]
    fn analyses_run_identically_on_a_reloaded_graph() {
        let (_, g) = sample_graph();
        let mut buf = Vec::new();
        write_cost_graph(&g, &mut buf).unwrap();
        let g2 = read_cost_graph(buf.as_slice()).unwrap();
        // Backward-slice sizes agree for every (instr, elem) node.
        for (id, n) in g.graph().iter() {
            let id2 = g2.graph().find(n.instr, &n.elem).unwrap();
            let s1 = crate::slicer::backward_slice(g.graph(), id).len();
            let s2 = crate::slicer::backward_slice(g2.graph(), id2).len();
            assert_eq!(s1, s2);
        }
    }

    #[test]
    fn dot_output_mentions_every_node() {
        let (p, g) = sample_graph();
        let mut buf = Vec::new();
        write_dot(&g, Some(&p), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("digraph"));
        assert_eq!(text.matches("label=").count(), g.graph().num_nodes());
        assert!(text.contains("style=dashed"), "reference edges rendered");
    }

    #[test]
    fn malformed_input_is_rejected_with_line_numbers() {
        let cases = [
            ("", "empty"),
            ("node 0 0 0 c0 plain 1\n", "header"),
            ("gcost 2\n", "version"),
            ("gcost 1\nnode x\n", "node"),
            ("gcost 1\nedge 0 1\n", "unknown node"),
            ("gcost 1\nwhat 1 2\n", "unknown record"),
        ];
        for (src, _why) in cases {
            assert!(read_cost_graph(src.as_bytes()).is_err(), "{src:?}");
        }
    }
}
