//! Object-sensitive calling-context encoding.
//!
//! The cost-benefit analysis annotates every node with the chain of
//! receiver-object allocation sites on the call stack (object sensitivity
//! in the sense of Milanova–Rountev–Ryder). The chain is folded into a
//! probabilistically unique `u64` with the Bond–McKinley recurrence
//! `g_i = 3·g_{i-1} + o_i`, and then reduced into one of `s` user-chosen
//! *slots* — the paper's bounded domain `D_cost = [0, s)`.
//!
//! [`ConflictStats`] measures the paper's CR column: for each instruction,
//! the degree to which distinct exact chains collide in the same slot.

use crate::fx::{FxHashMap, FxHashSet};
use lowutil_ir::{AllocSiteId, InstrId, ThreadId};

/// The encoded probabilistic context value for the empty chain.
pub const EMPTY_CONTEXT: u64 = 0;

/// The context-chain base of a guest thread: [`EMPTY_CONTEXT`] for the
/// main thread, a nonzero splitmix64-style mix of the thread id
/// otherwise.
///
/// A spawned thread's entry frame has no receiver chain of its own, so
/// without salting, instruction instances from different threads at the
/// same call depth would encode identical `g` values and falsely merge
/// into one abstract node. Seeding each thread's chain with a
/// high-entropy base keeps cross-thread contexts probabilistically
/// distinct while leaving main-thread encodings — and therefore every
/// single-threaded profile — bit-for-bit unchanged.
pub fn thread_base(tid: ThreadId) -> u64 {
    if tid.is_main() {
        return EMPTY_CONTEXT;
    }
    let mut z = u64::from(tid.0).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) | 1
}

/// Extends an encoded chain with one receiver allocation site:
/// `g' = 3·g + o` (wrapping).
pub fn extend_context(g: u64, site: AllocSiteId) -> u64 {
    g.wrapping_mul(3)
        .wrapping_add(u64::from(site.0).wrapping_add(1))
}

/// Reduces an encoded chain into one of `slots` context slots (the paper's
/// encoding function `h`).
pub fn slot_of(g: u64, slots: u32) -> u32 {
    debug_assert!(slots > 0, "slot count must be positive");
    (g % u64::from(slots)) as u32
}

/// Tracks the current context chain along the call stack.
///
/// Instance-method frames extend the caller's chain with the receiver's
/// allocation site; static-method frames inherit the caller's chain
/// unchanged (the paper concatenates the empty string). The stack
/// bottoms out at a `base` chain — [`EMPTY_CONTEXT`] for the main
/// thread, [`thread_base`] for spawned threads — so every frame of a
/// spawned thread carries its thread's salt.
#[derive(Debug, Clone, Default)]
pub struct ContextStack {
    frames: Vec<u64>,
    base: u64,
}

impl ContextStack {
    /// Creates an empty context stack based at [`EMPTY_CONTEXT`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty context stack bottoming out at `base` (see
    /// [`thread_base`]).
    pub fn with_base(base: u64) -> Self {
        ContextStack {
            frames: Vec::new(),
            base,
        }
    }

    /// The chain the stack bottoms out at.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Pushes a frame. `receiver_site` is the allocation site of the
    /// receiver object for instance methods, `None` for static methods and
    /// the entry frame.
    pub fn push(&mut self, receiver_site: Option<AllocSiteId>) {
        let parent = self.current();
        let g = match receiver_site {
            Some(site) => extend_context(parent, site),
            None => parent,
        };
        self.frames.push(g);
    }

    /// Pops a frame.
    ///
    /// # Panics
    /// Panics on underflow (a VM/tracer misalignment bug).
    pub fn pop(&mut self) {
        self.frames.pop().expect("context stack underflow");
    }

    /// The encoded chain of the current frame (the base chain if no
    /// frame is active).
    pub fn current(&self) -> u64 {
        self.frames.last().copied().unwrap_or(self.base)
    }

    /// Current depth.
    pub fn depth(&self) -> usize {
        self.frames.len()
    }
}

/// Context-conflict bookkeeping for the paper's CR metric.
///
/// `CR-s(i)` for an instruction `i` is 0 when every slot holds at most one
/// distinct chain, and `max_j dc[j] / Σ_j dc[j]` otherwise, where `dc[j]`
/// counts the distinct chains mapped to slot `j`. The reported figure is
/// the average over all instructions that executed with at least one
/// context.
#[derive(Debug, Clone, Default)]
pub struct ConflictStats {
    /// instruction → slot → set of distinct encoded chains.
    seen: FxHashMap<InstrId, FxHashMap<u32, FxHashSet<u64>>>,
    /// The most recent `(instr, slot, g)` record: straight-line code and
    /// loop bodies re-record the same triple on every iteration, so one
    /// cached entry removes the double map probe from the common case.
    last: Option<(InstrId, u32, u64)>,
}

impl ConflictStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `instr` executed under chain `g` mapped to `slot`.
    #[inline]
    pub fn record(&mut self, instr: InstrId, slot: u32, g: u64) {
        if self.last == Some((instr, slot, g)) {
            return;
        }
        self.last = Some((instr, slot, g));
        self.seen
            .entry(instr)
            .or_default()
            .entry(slot)
            .or_default()
            .insert(g);
    }

    /// Unions another statistics table into this one (used when merging
    /// replay shards). The distinct-chain sets per `(instr, slot)` union,
    /// so the result is identical to having recorded both streams into
    /// one table, in any order.
    pub fn merge(&mut self, other: ConflictStats) {
        for (instr, slots) in other.seen {
            let entry = self.seen.entry(instr).or_default();
            for (slot, gs) in slots {
                entry.entry(slot).or_default().extend(gs);
            }
        }
        self.last = None;
    }

    /// [`merge`](ConflictStats::merge) without consuming (or cloning)
    /// the source — the per-absorb path unions hundreds of chain sets,
    /// and cloning them first costs more than the union itself.
    pub fn merge_from(&mut self, other: &ConflictStats) {
        for (instr, slots) in &other.seen {
            let entry = self.seen.entry(*instr).or_default();
            for (slot, gs) in slots {
                entry.entry(*slot).or_default().extend(gs.iter().copied());
            }
        }
        self.last = None;
    }

    /// CR for one instruction, if it was ever recorded.
    pub fn cr_of(&self, instr: InstrId) -> Option<f64> {
        let slots = self.seen.get(&instr)?;
        let max = slots.values().map(|s| s.len()).max().unwrap_or(0);
        if max <= 1 {
            return Some(0.0);
        }
        let total: usize = slots.values().map(|s| s.len()).sum();
        Some(max as f64 / total as f64)
    }

    /// Average CR over all recorded instructions (the Table 1 CR column).
    pub fn average_cr(&self) -> f64 {
        if self.seen.is_empty() {
            return 0.0;
        }
        let sum: f64 = self.seen.keys().filter_map(|&i| self.cr_of(i)).sum();
        sum / self.seen.len() as f64
    }

    /// Number of instructions with recorded contexts.
    pub fn num_instructions(&self) -> usize {
        self.seen.len()
    }

    /// Total number of distinct (instruction, chain) pairs observed — the
    /// size the exact context domain would have needed.
    pub fn distinct_contexts(&self) -> usize {
        self.seen
            .values()
            .map(|slots| slots.values().map(|s| s.len()).sum::<usize>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lowutil_ir::MethodId;

    fn at(pc: u32) -> InstrId {
        InstrId::new(MethodId(0), pc)
    }

    #[test]
    fn encoding_follows_bond_mckinley_recurrence() {
        let g0 = EMPTY_CONTEXT;
        let g1 = extend_context(g0, AllocSiteId(4));
        let g2 = extend_context(g1, AllocSiteId(7));
        assert_eq!(g1, 5); // 3·0 + (4+1)
        assert_eq!(g2, 3 * 5 + 8);
    }

    #[test]
    fn encoding_is_order_sensitive() {
        // The recurrence distinguishes [a, b] from [b, a] for a ≠ b:
        // 3(a+1)+(b+1) = 3(b+1)+(a+1) only when a = b.
        for a in 0..10u32 {
            for b in 0..10u32 {
                if a == b {
                    continue;
                }
                let ab = extend_context(
                    extend_context(EMPTY_CONTEXT, AllocSiteId(a)),
                    AllocSiteId(b),
                );
                let ba = extend_context(
                    extend_context(EMPTY_CONTEXT, AllocSiteId(b)),
                    AllocSiteId(a),
                );
                assert_ne!(ab, ba, "[{a},{b}] vs [{b},{a}]");
            }
        }
    }

    #[test]
    fn extension_never_fixes_the_chain_value() {
        // Extending a chain always changes its encoding (no site encodes
        // as the identity), so parent and child contexts stay distinct.
        for g in [EMPTY_CONTEXT, 1, 17, 12345] {
            for o in 0..20u32 {
                assert_ne!(extend_context(g, AllocSiteId(o)), g);
            }
        }
    }

    #[test]
    fn thread_bases_salt_chains_without_touching_the_main_thread() {
        assert_eq!(thread_base(ThreadId::MAIN), EMPTY_CONTEXT);
        let mut seen = FxHashSet::default();
        for t in 1..200u32 {
            let b = thread_base(ThreadId(t));
            assert_ne!(b, EMPTY_CONTEXT, "T{t} base must be nonzero");
            assert!(seen.insert(b), "T{t} base collides");
        }
        // Identical call chains on different threads encode differently.
        let mut main = ContextStack::new();
        let mut worker = ContextStack::with_base(thread_base(ThreadId(1)));
        assert_eq!(worker.current(), worker.base());
        for cs in [&mut main, &mut worker] {
            cs.push(None);
            cs.push(Some(AllocSiteId(2)));
        }
        assert_ne!(main.current(), worker.current());
    }

    #[test]
    fn static_frames_inherit_context() {
        let mut cs = ContextStack::new();
        cs.push(None); // entry
        cs.push(Some(AllocSiteId(2)));
        let inst = cs.current();
        cs.push(None); // static call
        assert_eq!(cs.current(), inst);
        cs.pop();
        cs.pop();
        cs.pop();
        assert_eq!(cs.current(), EMPTY_CONTEXT);
    }

    #[test]
    fn slot_reduction_is_mod() {
        assert_eq!(slot_of(17, 8), 1);
        assert_eq!(slot_of(16, 8), 0);
        assert_eq!(slot_of(7, 16), 7);
    }

    #[test]
    fn cr_zero_when_slots_hold_single_chains() {
        let mut cs = ConflictStats::new();
        cs.record(at(0), 0, 100);
        cs.record(at(0), 1, 200);
        cs.record(at(0), 0, 100); // same chain again
        assert_eq!(cs.cr_of(at(0)), Some(0.0));
        assert_eq!(cs.average_cr(), 0.0);
    }

    #[test]
    fn cr_reflects_collisions() {
        let mut cs = ConflictStats::new();
        // Three distinct chains, two in slot 0 → max=2, total=3.
        cs.record(at(0), 0, 100);
        cs.record(at(0), 0, 101);
        cs.record(at(0), 1, 200);
        assert!((cs.cr_of(at(0)).unwrap() - 2.0 / 3.0).abs() < 1e-9);
        // All chains in one slot → CR = 1.
        cs.record(at(1), 3, 1);
        cs.record(at(1), 3, 2);
        assert_eq!(cs.cr_of(at(1)), Some(1.0));
        assert_eq!(cs.num_instructions(), 2);
        assert_eq!(cs.distinct_contexts(), 5);
    }
}
