//! The generic abstract-dynamic-thin-slicing framework.
//!
//! A backward dynamic flow (BDF) problem is formulated by choosing a
//! bounded abstract domain `D` and per-instruction abstraction functions
//! `f_a : N → D` (Definition 2). [`AbstractProfiler`] then builds the
//! abstract thin data dependence graph online: each event is classified by
//! the client's [`AbstractDomain`]; classified instances intern (and bump)
//! a node `(a, d)`, def-use edges are found through shadow locations, and
//! unclassified instances create no node (their definitions break the
//! chain, exactly as the paper's "the function is undefined otherwise").
//!
//! The null-origin and extended-copy-profiling clients in
//! `lowutil-analyses` are instances of this framework; `G_cost`
//! ([`crate::CostProfiler`]) is a hand-specialized instance that
//! additionally maintains heap-effect environments and reference edges.

use crate::graph::{DepGraph, NodeId, NodeKind};
use lowutil_ir::Local;
use lowutil_vm::{Event, FrameInfo, ShadowHeap, ShadowStack, Tracer};
use std::fmt::Debug;
use std::hash::Hash;

/// A client-defined bounded abstract domain.
///
/// `classify` is the abstraction function family `F = {f_a}`: given an
/// executed instruction instance (the event), return the domain element for
/// this instance, or `None` if the instance is not tracked.
///
/// Domains that need their own auxiliary state (object tags, origin
/// shadows) implement the optional frame hooks and keep that state
/// internally.
pub trait AbstractDomain {
    /// The domain element type (must be bounded in practice).
    type Elem: Clone + Eq + Hash + Debug;

    /// Classifies one instruction instance.
    fn classify(&mut self, event: &Event) -> Option<Self::Elem>;

    /// Observes a frame push (optional).
    fn frame_push(&mut self, info: &FrameInfo) {
        let _ = info;
    }

    /// Observes a frame pop (optional).
    fn frame_pop(&mut self) {}
}

/// Builds an abstract thin dependence graph for any [`AbstractDomain`].
#[derive(Debug)]
pub struct AbstractProfiler<D: AbstractDomain> {
    domain: D,
    graph: DepGraph<D::Elem>,
    shadow_stack: ShadowStack<Option<NodeId>>,
    shadow_heap: ShadowHeap<Option<NodeId>, ()>,
    shadow_statics: Vec<Option<NodeId>>,
    pending_args: Vec<Option<NodeId>>,
    ret_stash: Option<NodeId>,
}

impl<D: AbstractDomain> AbstractProfiler<D> {
    /// Creates a profiler around a client domain.
    pub fn new(domain: D) -> Self {
        AbstractProfiler {
            domain,
            graph: DepGraph::new(),
            shadow_stack: ShadowStack::new(),
            shadow_heap: ShadowHeap::new(()),
            shadow_statics: Vec::new(),
            pending_args: Vec::new(),
            ret_stash: None,
        }
    }

    /// The domain, for querying client-side state.
    pub fn domain(&self) -> &D {
        &self.domain
    }

    /// The graph built so far (read-only view for mid-run inspection, e.g.
    /// after a trap).
    pub fn graph(&self) -> &DepGraph<D::Elem> {
        &self.graph
    }

    /// The current shadow of a local in the innermost live frame — used by
    /// trap-time clients (null-origin tracking reads the shadow of the
    /// faulting base pointer). Returns `None` if no frame is live.
    pub fn local_shadow(&self, l: Local) -> Option<NodeId> {
        if self.shadow_stack.depth() == 0 {
            return None;
        }
        *self.shadow_stack.top().get(l.index())
    }

    /// Consumes the profiler, returning the abstract graph and the domain.
    pub fn finish(self) -> (DepGraph<D::Elem>, D) {
        (self.graph, self.domain)
    }

    fn shadow(&self, l: Local) -> Option<NodeId> {
        *self.shadow_stack.top().get(l.index())
    }

    fn set_shadow(&mut self, l: Local, n: Option<NodeId>) {
        self.shadow_stack.top_mut().set(l.index(), n);
    }

    fn kind_of(event: &Event) -> NodeKind {
        match event {
            Event::Alloc { .. } => NodeKind::Alloc,
            Event::LoadField { .. }
            | Event::LoadStatic { .. }
            | Event::ArrayLoad { .. }
            | Event::ArrayLen { .. } => NodeKind::HeapLoad,
            Event::StoreField { .. } | Event::StoreStatic { .. } | Event::ArrayStore { .. } => {
                NodeKind::HeapStore
            }
            Event::Predicate { .. } => NodeKind::Predicate,
            Event::Native { .. } => NodeKind::Native,
            _ => NodeKind::Plain,
        }
    }

    /// Thin uses of an event, as shadow sources.
    fn use_nodes(&self, event: &Event) -> Vec<Option<NodeId>> {
        match event {
            Event::Compute { uses, .. } => uses.iter().flatten().map(|&u| self.shadow(u)).collect(),
            Event::Predicate { uses, .. } => uses.iter().map(|&u| self.shadow(u)).collect(),
            Event::Alloc { len_use, .. } => len_use.iter().map(|&u| self.shadow(u)).collect(),
            Event::LoadField { object, offset, .. } => {
                vec![self.shadow_heap.get(*object, *offset as usize)]
            }
            Event::StoreField { src, .. } | Event::StoreStatic { src, .. } => {
                vec![self.shadow(*src)]
            }
            Event::LoadStatic { field, .. } => {
                vec![self.shadow_statics.get(field.index()).copied().flatten()]
            }
            Event::ArrayLoad {
                object, idx, index, ..
            } => vec![
                self.shadow(*idx),
                self.shadow_heap.get(*object, *index as usize),
            ],
            Event::ArrayStore { idx, src, .. } => {
                vec![self.shadow(*idx), self.shadow(*src)]
            }
            Event::ArrayLen { .. } => vec![],
            Event::Native { args, .. } => args.iter().map(|&a| self.shadow(a)).collect(),
            // Thread handles and join results are fresh producers for
            // generic domains; cross-thread value flow is modeled only by
            // the hand-specialized `G_cost` builder.
            Event::Spawn { .. }
            | Event::Join { .. }
            | Event::Call { .. }
            | Event::Return { .. }
            | Event::CallComplete { .. }
            | Event::Jump { .. }
            | Event::Phase { .. } => vec![],
        }
    }

    /// Where the event's definition shadow lives, if it defines something.
    fn apply_def(&mut self, event: &Event, node: Option<NodeId>) {
        match event {
            Event::Compute { dst, .. }
            | Event::Alloc { dst, .. }
            | Event::LoadField { dst, .. }
            | Event::LoadStatic { dst, .. }
            | Event::ArrayLoad { dst, .. }
            | Event::ArrayLen { dst, .. } => self.set_shadow(*dst, node),
            Event::StoreField { object, offset, .. } => {
                self.shadow_heap.set(*object, *offset as usize, node)
            }
            Event::ArrayStore { object, index, .. } => {
                self.shadow_heap.set(*object, *index as usize, node)
            }
            Event::StoreStatic { field, .. } => {
                if self.shadow_statics.len() <= field.index() {
                    self.shadow_statics.resize(field.index() + 1, None);
                }
                self.shadow_statics[field.index()] = node;
            }
            Event::Native { dst: Some(d), .. } => self.set_shadow(*d, node),
            Event::Spawn { dst, .. } => self.set_shadow(*dst, node),
            Event::Join { dst: Some(d), .. } => self.set_shadow(*d, node),
            _ => {}
        }
    }
}

impl<D: AbstractDomain> Tracer for AbstractProfiler<D> {
    fn instr(&mut self, event: &Event) {
        // Call/return plumbing is domain-independent.
        match event {
            Event::Call { args, .. } => {
                self.pending_args.clear();
                for a in args {
                    let s = self.shadow(*a);
                    self.pending_args.push(s);
                }
                self.domain.classify(event);
                return;
            }
            Event::Return { src, .. } => {
                self.ret_stash = src.and_then(|s| self.shadow(s));
                self.domain.classify(event);
                return;
            }
            Event::CallComplete { dst, .. } => {
                let stash = self.ret_stash.take();
                if let Some(d) = dst {
                    self.set_shadow(*d, stash);
                }
                self.domain.classify(event);
                return;
            }
            Event::Jump { .. } | Event::Phase { .. } => {
                return;
            }
            _ => {}
        }

        let elem = self.domain.classify(event);
        let node = elem.map(|e| {
            let n = self.graph.intern(event.at(), e, Self::kind_of(event));
            self.graph.bump(n);
            n
        });
        if let Some(n) = node {
            for m in self.use_nodes(event).into_iter().flatten() {
                self.graph.add_edge(m, n);
            }
        }
        self.apply_def(event, node);
    }

    fn frame_push(&mut self, info: &FrameInfo) {
        self.shadow_stack.push(info.num_locals as usize);
        for i in 0..info.num_args as usize {
            let data = self.pending_args.get(i).copied().flatten();
            self.shadow_stack.top_mut().set(i, data);
        }
        self.pending_args.clear();
        self.domain.frame_push(info);
    }

    fn frame_pop(&mut self) {
        self.shadow_stack.pop();
        self.domain.frame_pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lowutil_ir::{parse_program, Value};
    use lowutil_vm::Vm;

    /// A toy domain: classify every value-producing instruction by the
    /// *sign* of the produced integer. Bounded domain {Neg, Zero, Pos}.
    #[derive(Debug, Default)]
    struct SignDomain;

    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    enum Sign {
        Neg,
        Zero,
        Pos,
        NonInt,
    }

    impl AbstractDomain for SignDomain {
        type Elem = Sign;

        fn classify(&mut self, event: &Event) -> Option<Sign> {
            let v = event.produced_value()?;
            Some(match v {
                Value::Int(i) if i < 0 => Sign::Neg,
                Value::Int(0) => Sign::Zero,
                Value::Int(_) => Sign::Pos,
                _ => Sign::NonInt,
            })
        }
    }

    #[test]
    fn sign_domain_builds_bounded_graph() {
        let src = r#"
method main/0 {
  i = 0
  one = 1
  lim = 50
loop:
  if i >= lim goto done
  i = i + one
  goto loop
done:
  return
}
"#;
        let p = parse_program(src).unwrap();
        let mut prof = AbstractProfiler::new(SignDomain);
        Vm::new(&p).run(&mut prof).unwrap();
        let (g, _) = prof.finish();
        // `i = i + one` produces Pos 50 times → one node with freq 50.
        // `i = 0` produces Zero once. Bounded regardless of trip count.
        assert!(g.num_nodes() <= 6);
        let add_pos = g
            .iter()
            .find(|(_, n)| n.elem == Sign::Pos && n.freq >= 50)
            .expect("hot positive node");
        let _ = add_pos;
    }

    #[test]
    fn unclassified_instances_break_chains() {
        /// Tracks only stores; everything else is untracked.
        #[derive(Debug, Default)]
        struct StoresOnly;
        impl AbstractDomain for StoresOnly {
            type Elem = ();
            fn classify(&mut self, event: &Event) -> Option<()> {
                matches!(event, Event::StoreField { .. }).then_some(())
            }
        }
        let src = r#"
class Box { v }
method main/0 {
  b = new Box
  x = 1
  b.v = x
  y = b.v
  return
}
"#;
        let p = parse_program(src).unwrap();
        let mut prof = AbstractProfiler::new(StoresOnly);
        Vm::new(&p).run(&mut prof).unwrap();
        let (g, _) = prof.finish();
        assert_eq!(g.num_nodes(), 1);
        assert_eq!(g.num_edges(), 0, "untracked defs do not feed edges");
    }

    #[test]
    fn data_still_flows_through_heap_between_tracked_nodes() {
        /// Track every definition with a unit domain.
        #[derive(Debug, Default)]
        struct All;
        impl AbstractDomain for All {
            type Elem = ();
            fn classify(&mut self, event: &Event) -> Option<()> {
                event.produced_value().map(|_| ())
            }
        }
        let src = r#"
class Box { v }
native print/1
method main/0 {
  b = new Box
  x = 1
  b.v = x
  y = b.v
  native print(y)
  return
}
"#;
        let p = parse_program(src).unwrap();
        let mut prof = AbstractProfiler::new(All);
        Vm::new(&p).run(&mut prof).unwrap();
        let (g, _) = prof.finish();
        // x=1 → store → load → (print consumes but produces no value here:
        // print has no return, so Native classify sees None → untracked).
        // Chain length ≥ 3 edges among tracked nodes: x→store, store→load.
        assert!(g.num_edges() >= 2);
    }
}
