//! The abstract (thin) data dependence graph.
//!
//! Nodes are elements of `I × D` (Definition 2): a static instruction
//! annotated with a bounded abstract-domain element. Each node carries an
//! execution frequency (how many instruction instances it stands for) and a
//! kind mark — the paper's underlined (allocation), boxed (heap store),
//! circled (heap load), predicate, and native decorations — that the
//! cost-benefit analyses dispatch on.
//!
//! The same structure, instantiated with the *occurrence index* as the
//! domain, represents the unbounded concrete dependence graph of
//! traditional dynamic slicing (see [`crate::concrete`]); its memory growth
//! versus the abstract graph is one of the reproduction's experiments.

use crate::fx::{FxHashMap, FxHashSet};
use lowutil_ir::InstrId;
use std::collections::hash_map::Entry;
use std::fmt;
use std::hash::Hash;

/// Dense node index within one [`DepGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Returns the raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The paper's node decorations (Figure 3): how an instruction touches the
/// heap, or whether it is a pure consumer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum NodeKind {
    /// A stack-only computation.
    #[default]
    Plain,
    /// An allocation ("underlined").
    Alloc,
    /// A heap load ("circled"): instance field, static field, array
    /// element, or array length.
    HeapLoad,
    /// A heap store ("boxed").
    HeapStore,
    /// A predicate consumer (`if`).
    Predicate,
    /// A native consumer/producer (program output boundary).
    Native,
}

impl NodeKind {
    /// Consumers (predicates and natives) represent the consumption of
    /// data: values reaching them benefit control flow or program output.
    pub fn is_consumer(self) -> bool {
        matches!(self, NodeKind::Predicate | NodeKind::Native)
    }

    /// Returns `true` for heap-reading nodes, which bound the backward
    /// traversal of relative-cost computation (Definition 5).
    pub fn reads_heap(self) -> bool {
        self == NodeKind::HeapLoad
    }

    /// Returns `true` for heap-writing nodes, which bound the forward
    /// traversal of relative-benefit computation (Definition 6).
    pub fn writes_heap(self) -> bool {
        self == NodeKind::HeapStore
    }

    /// The stable one-byte on-disk code of this kind (snapshot format v1).
    pub fn code(self) -> u8 {
        match self {
            NodeKind::Plain => 0,
            NodeKind::Alloc => 1,
            NodeKind::HeapLoad => 2,
            NodeKind::HeapStore => 3,
            NodeKind::Predicate => 4,
            NodeKind::Native => 5,
        }
    }

    /// Decodes [`code`](NodeKind::code); `None` for bytes outside the
    /// format.
    pub fn from_code(code: u8) -> Option<NodeKind> {
        Some(match code {
            0 => NodeKind::Plain,
            1 => NodeKind::Alloc,
            2 => NodeKind::HeapLoad,
            3 => NodeKind::HeapStore,
            4 => NodeKind::Predicate,
            5 => NodeKind::Native,
            _ => return None,
        })
    }
}

/// Payload of one abstract node.
#[derive(Debug, Clone)]
pub struct Node<D> {
    /// The static instruction.
    pub instr: InstrId,
    /// The abstract-domain element annotating it.
    pub elem: D,
    /// Execution frequency: how many instruction instances mapped here.
    pub freq: u64,
    /// Heap/consumer decoration.
    pub kind: NodeKind,
}

/// An abstract data dependence graph over domain elements `D`.
///
/// Edges are def-use: an edge `a → b` means (an instance of) `a` wrote a
/// location that (an instance of) `b` read without an intervening write.
/// Edge insertion is idempotent.
#[derive(Debug, Clone)]
pub struct DepGraph<D> {
    nodes: Vec<Node<D>>,
    index: FxHashMap<(InstrId, D), NodeId>,
    succs: Vec<Vec<NodeId>>,
    preds: Vec<Vec<NodeId>>,
    edge_set: FxHashSet<(NodeId, NodeId)>,
    /// Fast path for the profiler's hot loops, which re-add the same edge
    /// on every iteration: the most recently added edge skips the set
    /// lookup.
    last_edge: Option<(NodeId, NodeId)>,
}

impl<D: Clone + Eq + Hash> Default for DepGraph<D> {
    fn default() -> Self {
        Self::new()
    }
}

impl<D: Clone + Eq + Hash> DepGraph<D> {
    /// Creates an empty graph.
    pub fn new() -> Self {
        DepGraph {
            nodes: Vec::new(),
            index: FxHashMap::default(),
            succs: Vec::new(),
            preds: Vec::new(),
            edge_set: FxHashSet::default(),
            last_edge: None,
        }
    }

    /// Returns the node for `(instr, elem)`, creating it with frequency 0
    /// and the given kind if absent. The kind of an existing node is left
    /// unchanged (an instruction's kind never varies across instances).
    pub fn intern(&mut self, instr: InstrId, elem: D, kind: NodeKind) -> NodeId {
        match self.index.entry((instr, elem.clone())) {
            Entry::Occupied(e) => *e.get(),
            Entry::Vacant(e) => {
                let id = NodeId(self.nodes.len() as u32);
                self.nodes.push(Node {
                    instr,
                    elem,
                    freq: 0,
                    kind,
                });
                self.succs.push(Vec::new());
                self.preds.push(Vec::new());
                e.insert(id);
                id
            }
        }
    }

    /// Looks up a node without creating it.
    pub fn find(&self, instr: InstrId, elem: &D) -> Option<NodeId> {
        self.index.get(&(instr, elem.clone())).copied()
    }

    /// Increments a node's execution frequency.
    pub fn bump(&mut self, node: NodeId) {
        self.nodes[node.index()].freq += 1;
    }

    /// Overwrites a node's execution frequency (used when reloading a
    /// serialized graph).
    pub fn set_freq(&mut self, node: NodeId, freq: u64) {
        self.nodes[node.index()].freq = freq;
    }

    /// Adds `delta` to a node's execution frequency (used when merging
    /// shard graphs: frequencies of the same abstract node sum).
    pub fn add_freq(&mut self, node: NodeId, delta: u64) {
        self.nodes[node.index()].freq += delta;
    }

    /// Adds a def-use edge `from → to` (idempotent).
    pub fn add_edge(&mut self, from: NodeId, to: NodeId) {
        if self.last_edge == Some((from, to)) {
            return;
        }
        self.last_edge = Some((from, to));
        if self.edge_set.insert((from, to)) {
            self.succs[from.index()].push(to);
            self.preds[to.index()].push(from);
        }
    }

    /// The node payload.
    ///
    /// # Panics
    /// Panics if `node` is not in this graph.
    pub fn node(&self, node: NodeId) -> &Node<D> {
        &self.nodes[node.index()]
    }

    /// Successors (uses of this node's definition).
    pub fn succs(&self, node: NodeId) -> &[NodeId] {
        &self.succs[node.index()]
    }

    /// Predecessors (definitions this node uses).
    pub fn preds(&self, node: NodeId) -> &[NodeId] {
        &self.preds[node.index()]
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of (deduplicated) edges.
    pub fn num_edges(&self) -> usize {
        self.edge_set.len()
    }

    /// Iterates over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Iterates over `(id, node)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &Node<D>)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i as u32), n))
    }

    /// Approximate memory footprint of the graph in bytes (the paper's `M`
    /// column reports graph memory, excluding the shadow heap).
    pub fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        // Count content (lengths), not allocation capacities: the figure
        // must not depend on construction history, so a graph merged from
        // replay shards reports exactly what a live-built one does.
        let node_bytes = self.nodes.len() * size_of::<Node<D>>();
        let index_bytes = self.index.len() * (size_of::<(InstrId, D)>() + size_of::<NodeId>() + 16);
        let adj_bytes: usize = self
            .succs
            .iter()
            .chain(self.preds.iter())
            .map(|v| v.len() * size_of::<NodeId>())
            .sum();
        let edge_bytes = self.edge_set.len() * (size_of::<(NodeId, NodeId)>() + 16);
        node_bytes + index_bytes + adj_bytes + edge_bytes
    }

    /// Computes strongly connected components (Tarjan, iterative) and
    /// returns `(component index per node, number of components)`.
    /// Component indices are in reverse topological order: if `c1` has an
    /// edge into `c2`, then `comp[c1] > comp[c2]`.
    pub fn sccs(&self) -> (Vec<u32>, usize) {
        let n = self.nodes.len();
        let mut comp = vec![u32::MAX; n];
        let mut low = vec![0u32; n];
        let mut disc = vec![u32::MAX; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<u32> = Vec::new();
        let mut timer = 0u32;
        let mut n_comps = 0usize;

        // Iterative Tarjan with an explicit work stack of (node, child idx).
        let mut work: Vec<(u32, usize)> = Vec::new();
        for start in 0..n as u32 {
            if disc[start as usize] != u32::MAX {
                continue;
            }
            work.push((start, 0));
            while let Some(&(v, ci)) = work.last() {
                let vi = v as usize;
                if ci == 0 {
                    disc[vi] = timer;
                    low[vi] = timer;
                    timer += 1;
                    stack.push(v);
                    on_stack[vi] = true;
                }
                if ci < self.succs[vi].len() {
                    work.last_mut().expect("non-empty work stack").1 += 1;
                    let w = self.succs[vi][ci].0;
                    let wi = w as usize;
                    if disc[wi] == u32::MAX {
                        work.push((w, 0));
                    } else if on_stack[wi] {
                        low[vi] = low[vi].min(disc[wi]);
                    }
                } else {
                    if low[vi] == disc[vi] {
                        // v is an SCC root.
                        loop {
                            let w = stack.pop().expect("tarjan stack");
                            on_stack[w as usize] = false;
                            comp[w as usize] = n_comps as u32;
                            if w == v {
                                break;
                            }
                        }
                        n_comps += 1;
                    }
                    work.pop();
                    if let Some(&(p, _)) = work.last() {
                        let pi = p as usize;
                        low[pi] = low[pi].min(low[vi]);
                    }
                }
            }
        }
        (comp, n_comps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lowutil_ir::MethodId;

    fn at(pc: u32) -> InstrId {
        InstrId::new(MethodId(0), pc)
    }

    #[test]
    fn intern_is_idempotent_per_instr_and_element() {
        let mut g: DepGraph<u32> = DepGraph::new();
        let a = g.intern(at(0), 1, NodeKind::Plain);
        let b = g.intern(at(0), 1, NodeKind::Plain);
        let c = g.intern(at(0), 2, NodeKind::Plain);
        let d = g.intern(at(1), 1, NodeKind::Plain);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.find(at(0), &1), Some(a));
        assert_eq!(g.find(at(9), &1), None);
    }

    #[test]
    fn edges_deduplicate() {
        let mut g: DepGraph<u32> = DepGraph::new();
        let a = g.intern(at(0), 0, NodeKind::Plain);
        let b = g.intern(at(1), 0, NodeKind::Plain);
        g.add_edge(a, b);
        g.add_edge(a, b);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.succs(a), &[b]);
        assert_eq!(g.preds(b), &[a]);
    }

    #[test]
    fn frequencies_accumulate() {
        let mut g: DepGraph<u32> = DepGraph::new();
        let a = g.intern(at(0), 0, NodeKind::Plain);
        g.bump(a);
        g.bump(a);
        assert_eq!(g.node(a).freq, 2);
    }

    #[test]
    fn kinds_classify_consumers_and_heap_ops() {
        assert!(NodeKind::Predicate.is_consumer());
        assert!(NodeKind::Native.is_consumer());
        assert!(!NodeKind::Alloc.is_consumer());
        assert!(NodeKind::HeapLoad.reads_heap());
        assert!(NodeKind::HeapStore.writes_heap());
        assert!(!NodeKind::Plain.reads_heap());
    }

    #[test]
    fn scc_condensation_orders_reverse_topologically() {
        // a → b ⇄ c → d; SCCs: {a}, {b,c}, {d}; comp(a) > comp(bc) > comp(d).
        let mut g: DepGraph<u32> = DepGraph::new();
        let a = g.intern(at(0), 0, NodeKind::Plain);
        let b = g.intern(at(1), 0, NodeKind::Plain);
        let c = g.intern(at(2), 0, NodeKind::Plain);
        let d = g.intern(at(3), 0, NodeKind::Plain);
        g.add_edge(a, b);
        g.add_edge(b, c);
        g.add_edge(c, b);
        g.add_edge(c, d);
        let (comp, n) = g.sccs();
        assert_eq!(n, 3);
        assert_eq!(comp[b.index()], comp[c.index()]);
        assert_ne!(comp[a.index()], comp[b.index()]);
        assert!(comp[a.index()] > comp[b.index()]);
        assert!(comp[b.index()] > comp[d.index()]);
    }

    #[test]
    fn scc_handles_self_loops_and_isolated_nodes() {
        let mut g: DepGraph<u32> = DepGraph::new();
        let a = g.intern(at(0), 0, NodeKind::Plain);
        let b = g.intern(at(1), 0, NodeKind::Plain);
        g.add_edge(a, a);
        let (comp, n) = g.sccs();
        assert_eq!(n, 2);
        assert_ne!(comp[a.index()], comp[b.index()]);
    }

    #[test]
    fn approx_bytes_grows_with_content() {
        let mut g: DepGraph<u64> = DepGraph::new();
        let empty = g.approx_bytes();
        for i in 0..100 {
            let a = g.intern(at(i), 0, NodeKind::Plain);
            let b = g.intern(at(i + 1), 0, NodeKind::Plain);
            g.add_edge(a, b);
        }
        assert!(g.approx_bytes() > empty);
    }
}
