//! Dense `|I| × |D|` node interning for bounded abstract domains.
//!
//! The whole point of abstract thin slicing (Definition 2) is that the
//! dependence graph is bounded by `|I| × |D|` — so when the domain `D`
//! can enumerate itself densely, the per-event node lookup does not
//! need a hash probe at all. [`DenseInterner`] fronts
//! [`DepGraph::intern`] with a flat `Vec<NodeId>` indexed by
//! `global_instr_index * |D| + elem.dense_index()`: the hot path is one
//! multiply-add and one array load. The hashed [`DepGraph`] index stays
//! authoritative (the cold path still goes through
//! [`DepGraph::intern`]), so `find`, serialization, and every graph
//! consumer are oblivious to which interning path built the graph —
//! the two produce structurally identical graphs by construction, and a
//! property test (`crates/core/tests/dense_props.rs`) checks it anyway.
//!
//! Unbounded domains (e.g. the occurrence index of traditional slicing
//! in [`crate::concrete`]) cannot implement [`DenseDomain`] and keep
//! using the hashed path.

use crate::graph::{DepGraph, NodeId, NodeKind};
use lowutil_ir::{InstrId, Program};
use std::hash::Hash;

/// A bounded abstract domain whose elements enumerate densely as
/// `0..cardinality`.
///
/// The cardinality is a run-time property of the profiler configuration
/// (for [`crate::gcost::CostElem`] it is `slots + 1`), so it is passed
/// to [`DenseInterner::new`] rather than baked into the trait; an
/// element's `dense_index` must be below the cardinality the interner
/// was built with.
pub trait DenseDomain: Clone + Eq + Hash {
    /// This element's index in `0..cardinality`.
    fn dense_index(&self) -> usize;
}

/// Maps every static instruction of a program to a dense global index
/// in `0..program.num_instrs()`, via per-method prefix sums.
#[derive(Debug, Clone)]
pub struct InstrIndexer {
    /// `method_offsets[m]` = number of instructions in methods `0..m`.
    method_offsets: Vec<u32>,
    num_instrs: usize,
}

impl InstrIndexer {
    /// Builds the indexer for a program.
    pub fn new(program: &Program) -> Self {
        let mut method_offsets = Vec::with_capacity(program.methods().len());
        let mut total: u32 = 0;
        for method in program.methods() {
            method_offsets.push(total);
            total += method.body().len() as u32;
        }
        InstrIndexer {
            method_offsets,
            num_instrs: total as usize,
        }
    }

    /// The dense global index of `instr`.
    #[inline]
    pub fn index(&self, instr: InstrId) -> usize {
        (self.method_offsets[instr.method.0 as usize] + instr.pc) as usize
    }

    /// Total number of static instructions.
    pub fn num_instrs(&self) -> usize {
        self.num_instrs
    }
}

/// Sentinel marking an empty table slot. Node ids are dense from 0, so
/// a graph would need 2³²−1 nodes before colliding with it.
const EMPTY: NodeId = NodeId(u32::MAX);

/// A flat `|I| × |D|` interning table fronting [`DepGraph::intern`].
#[derive(Debug, Clone)]
pub struct DenseInterner {
    table: Vec<NodeId>,
    cardinality: usize,
    /// Slots written since construction or the last [`reset`]
    /// (`DenseInterner::reset`) — one entry per *node*, recorded on the
    /// cold path only, so a reset costs O(nodes interned) instead of
    /// O(|I| × |D|). This is what lets a shard worker reuse one table
    /// across every batch it builds (arena reuse) rather than paying an
    /// allocate-and-zero of the full table per batch.
    touched: Vec<u32>,
}

impl DenseInterner {
    /// Creates a table for `num_instrs` static instructions and a
    /// domain of `cardinality` elements.
    pub fn new(num_instrs: usize, cardinality: usize) -> Self {
        let slots = num_instrs * cardinality;
        debug_assert!(slots <= u32::MAX as usize, "table exceeds u32 slot width");
        DenseInterner {
            table: vec![EMPTY; slots],
            cardinality,
            touched: Vec::new(),
        }
    }

    /// The domain cardinality this table was sized for.
    pub fn cardinality(&self) -> usize {
        self.cardinality
    }

    /// Total slot count (`num_instrs × cardinality`) this table holds.
    pub fn num_slots(&self) -> usize {
        self.table.len()
    }

    /// Approximate memory footprint of the table in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.table.capacity() * std::mem::size_of::<NodeId>()
    }

    /// Returns the table to its empty state by clearing only the slots
    /// written since the last reset — O(nodes interned), making the
    /// table reusable across shards without reallocating.
    pub fn reset(&mut self) {
        for &slot in &self.touched {
            self.table[slot as usize] = EMPTY;
        }
        self.touched.clear();
    }

    /// Returns the node for `(instr, elem)`, creating it in `graph` if
    /// absent. Hot path: one multiply-add and one array load; the
    /// hashed index inside `graph` is only touched on first sight of a
    /// pair, keeping [`DepGraph::find`] and friends consistent.
    ///
    /// # Panics
    /// Panics if `instr` is outside the program the `indexer` was built
    /// from, or `elem.dense_index() >= self.cardinality()`.
    #[inline]
    pub fn intern<D: DenseDomain>(
        &mut self,
        graph: &mut DepGraph<D>,
        indexer: &InstrIndexer,
        instr: InstrId,
        elem: D,
        kind: NodeKind,
    ) -> NodeId {
        let di = elem.dense_index();
        debug_assert!(di < self.cardinality, "dense index out of bounds");
        let slot = indexer.index(instr) * self.cardinality + di;
        let cached = self.table[slot];
        if cached != EMPTY {
            return cached;
        }
        let id = graph.intern(instr, elem, kind);
        self.table[slot] = id;
        self.touched.push(slot as u32);
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lowutil_ir::MethodId;

    impl DenseDomain for u32 {
        fn dense_index(&self) -> usize {
            *self as usize
        }
    }

    fn at(m: u32, pc: u32) -> InstrId {
        InstrId::new(MethodId(m), pc)
    }

    #[test]
    fn dense_intern_matches_hashed_intern() {
        // Fake a 2-method layout: method 0 has 3 instrs, method 1 has 2.
        let indexer = InstrIndexer {
            method_offsets: vec![0, 3],
            num_instrs: 5,
        };
        let card = 4;
        let mut di = DenseInterner::new(indexer.num_instrs(), card);
        let mut dense: DepGraph<u32> = DepGraph::new();
        let mut hashed: DepGraph<u32> = DepGraph::new();
        let events = [
            (at(0, 0), 1u32),
            (at(0, 2), 0),
            (at(1, 1), 3),
            (at(0, 0), 1),
            (at(1, 1), 3),
            (at(0, 0), 2),
        ];
        for &(instr, elem) in &events {
            let a = di.intern(&mut dense, &indexer, instr, elem, NodeKind::Plain);
            let b = hashed.intern(instr, elem, NodeKind::Plain);
            assert_eq!(a, b);
        }
        assert_eq!(dense.num_nodes(), hashed.num_nodes());
        // The dense-built graph's own hashed index stays queryable.
        assert_eq!(dense.find(at(0, 0), &1), hashed.find(at(0, 0), &1));
    }

    #[test]
    fn indexer_assigns_contiguous_indices() {
        let indexer = InstrIndexer {
            method_offsets: vec![0, 4, 9],
            num_instrs: 12,
        };
        assert_eq!(indexer.index(at(0, 0)), 0);
        assert_eq!(indexer.index(at(0, 3)), 3);
        assert_eq!(indexer.index(at(1, 0)), 4);
        assert_eq!(indexer.index(at(2, 2)), 11);
    }

    /// After `reset`, a reused table interns a fresh graph exactly as a
    /// newly allocated table would — no stale node ids survive.
    #[test]
    fn reset_returns_the_table_to_empty() {
        let indexer = InstrIndexer {
            method_offsets: vec![0, 3],
            num_instrs: 5,
        };
        let mut di = DenseInterner::new(indexer.num_instrs(), 4);
        let mut g1: DepGraph<u32> = DepGraph::new();
        // Populate in one order so surviving entries would be visible as
        // wrong ids in the second, differently ordered graph.
        for &(instr, elem) in &[(at(1, 1), 3u32), (at(0, 0), 1), (at(0, 2), 0)] {
            di.intern(&mut g1, &indexer, instr, elem, NodeKind::Plain);
        }
        di.reset();
        let mut reused: DepGraph<u32> = DepGraph::new();
        let mut fresh_di = DenseInterner::new(indexer.num_instrs(), 4);
        let mut fresh: DepGraph<u32> = DepGraph::new();
        for &(instr, elem) in &[(at(0, 0), 2u32), (at(1, 1), 3), (at(0, 0), 2)] {
            let a = di.intern(&mut reused, &indexer, instr, elem, NodeKind::Plain);
            let b = fresh_di.intern(&mut fresh, &indexer, instr, elem, NodeKind::Plain);
            assert_eq!(a, b);
        }
        assert_eq!(reused.num_nodes(), fresh.num_nodes());
    }

    #[test]
    fn table_bytes_scale_with_domain() {
        let small = DenseInterner::new(100, 2);
        let large = DenseInterner::new(100, 17);
        assert!(large.approx_bytes() > small.approx_bytes());
    }
}
