//! On-disk CSR snapshot format v1 — the persistent graph store.
//!
//! The paper's §3.2 notes the client analyses can run offline if the JVM
//! "only needs to write `G_cost` to external storage". The text export
//! ([`crate::export`]) provides that boundary for interchange; this module
//! provides it for *speed*: a binary format whose payload is exactly the
//! flat little-endian arrays of the in-memory [`CsrGraph`], so a saved
//! graph loads zero-copy — the offset/adjacency/frequency/bitset arrays
//! are borrowed straight out of the file buffer ([`Cow::Borrowed`]),
//! with no per-node work beyond validation.
//!
//! # File layout
//!
//! ```text
//! magic        8 bytes   "LUSNAPV1"
//! header_len   u32 LE    byte length of the header body
//! header_crc   u32 LE    CRC32 (IEEE) of the header body
//! header body  header_len bytes:
//!   version            u32   = 1
//!   section_count      u32   = 14
//!   content_hash       u64   order-independent graph hash ([`content_hash`])
//!   nodes              u64
//!   edges              u64
//!   instr_instances    u64
//!   shadow_heap_bytes  u64
//!   total_instructions u64   VM instructions_executed (dead metrics' I)
//!   section table      section_count × 32 bytes:
//!     id u32, reserved u32, offset u64, len u64, crc u32, reserved u32
//! sections     raw little-endian arrays, each 8-byte aligned
//! ```
//!
//! Nodes are stored in the *canonical order* of
//! [`crate::export::canonical_order`] with sorted
//! adjacency, so the bytes depend only on graph content: saving the same
//! abstract graph twice yields identical files, and a [`CostGraph`]
//! reconstructed from a snapshot interns node `i` of the file as
//! [`NodeId`]`(i)` — the loaded CSR and the reconstructed graph agree on
//! node identity by construction.
//!
//! # Hardening
//!
//! Same discipline as trace v2: every declared length is checked against
//! the physical file size *before* any allocation or indexing, every
//! section carries a CRC, and structural invariants (offset monotonicity,
//! adjacency ranges, bitset/kind agreement) are revalidated by
//! [`CsrGraph::from_raw_parts`]. Corrupt input is rejected with a
//! [`StoreError`], never a panic.

use crate::csr::CsrGraph;
use crate::export::{canonical_order, elem_rank};
use crate::gcost::{CostElem, CostGraph, FieldKey, HeapEffect, TaggedSite};
use crate::graph::{DepGraph, NodeId, NodeKind};
use lowutil_ir::{AllocSiteId, FieldId, InstrId, MethodId, StaticId};
use std::borrow::Cow;
use std::collections::{HashMap, HashSet};
use std::error::Error;
use std::fmt;
use std::fs;
use std::io::{self, Write};
use std::path::Path;

/// File magic: "LUSNAPV1".
pub const MAGIC: [u8; 8] = *b"LUSNAPV1";
/// Current format version.
pub const FORMAT_VERSION: u32 = 1;

const SEC_KIND: u32 = 1;
const SEC_FREQ: u32 = 2;
const SEC_SUCC_OFF: u32 = 3;
const SEC_SUCC_ADJ: u32 = 4;
const SEC_PRED_OFF: u32 = 5;
const SEC_PRED_ADJ: u32 = 6;
const SEC_READS_HEAP: u32 = 7;
const SEC_WRITES_HEAP: u32 = 8;
const SEC_CONSUMER: u32 = 9;
const SEC_NODE_INSTR: u32 = 10;
const SEC_NODE_ELEM: u32 = 11;
const SEC_EFFECTS: u32 = 12;
const SEC_REF_EDGES: u32 = 13;
const SEC_POINTS_TO: u32 = 14;

/// Section ids in file order — v1 requires exactly these, in this order.
pub(crate) const SECTION_IDS: [u32; 14] = [
    SEC_KIND,
    SEC_FREQ,
    SEC_SUCC_OFF,
    SEC_SUCC_ADJ,
    SEC_PRED_OFF,
    SEC_PRED_ADJ,
    SEC_READS_HEAP,
    SEC_WRITES_HEAP,
    SEC_CONSUMER,
    SEC_NODE_INSTR,
    SEC_NODE_ELEM,
    SEC_EFFECTS,
    SEC_REF_EDGES,
    SEC_POINTS_TO,
];

const PREAMBLE_LEN: usize = 16;
const HEADER_FIXED_LEN: usize = 56;
const SECTION_ENTRY_LEN: usize = 32;
/// Bytes per `EFFECTS` record: `(node, tag, a, b, c)` as 5 × u32.
const EFFECT_RECORD: usize = 20;
/// Bytes per `POINTS_TO` record: `(site, slot, field, site2, slot2)`.
const POINTS_TO_RECORD: usize = 20;

pub(crate) const EFFECT_ALLOC: u32 = 0;
pub(crate) const EFFECT_LOAD: u32 = 1;
pub(crate) const EFFECT_STORE: u32 = 2;
pub(crate) const EFFECT_LOAD_STATIC: u32 = 3;
pub(crate) const EFFECT_STORE_STATIC: u32 = 4;

/// `FieldKey::Element` on disk.
const FIELD_ELEMENT: u32 = u32::MAX;
/// `FieldKey::Length` on disk.
const FIELD_LENGTH: u32 = u32::MAX - 1;

pub(crate) fn field_code(f: FieldKey) -> u32 {
    match f {
        FieldKey::Field(id) => id.0,
        FieldKey::Element => FIELD_ELEMENT,
        FieldKey::Length => FIELD_LENGTH,
    }
}

fn decode_field(code: u32) -> FieldKey {
    match code {
        FIELD_ELEMENT => FieldKey::Element,
        FIELD_LENGTH => FieldKey::Length,
        id => FieldKey::Field(FieldId(id)),
    }
}

/// Packs a heap effect as the `(tag, a, b, c)` tail of an `EFFECTS`
/// record — shared by [`write_snapshot`] and the incremental writer so
/// the encoding exists in exactly one place.
pub(crate) fn effect_code(e: &HeapEffect) -> (u32, u32, u32, u32) {
    match *e {
        HeapEffect::Alloc { site } => (EFFECT_ALLOC, site.site.0, site.slot, 0),
        HeapEffect::Load { site, field } => {
            (EFFECT_LOAD, site.site.0, site.slot, field_code(field))
        }
        HeapEffect::Store { site, field } => {
            (EFFECT_STORE, site.site.0, site.slot, field_code(field))
        }
        HeapEffect::LoadStatic(s) => (EFFECT_LOAD_STATIC, s.0, 0, 0),
        HeapEffect::StoreStatic(s) => (EFFECT_STORE_STATIC, s.0, 0, 0),
    }
}

// ---------------------------------------------------------------------------
// CRC32 and content hashing
// ---------------------------------------------------------------------------

const fn crc32_tables() -> [[u32; 256]; 8] {
    let mut t = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        t[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            t[k][i] = (t[k - 1][i] >> 8) ^ t[0][(t[k - 1][i] & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    t
}

static CRC32_TABLES: [[u32; 256]; 8] = crc32_tables();

/// CRC32 (IEEE), slice-by-8: eight table lookups per 8-byte chunk
/// instead of one per byte. Bit-identical to the classic byte-at-a-time
/// loop (which still handles the tail) — section checksums sit on the
/// per-absorb snapshot path, so the constant factor matters.
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    let t = &CRC32_TABLES;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        let lo = u32::from_le_bytes([c[0], c[1], c[2], c[3]]) ^ crc;
        let hi = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
        crc = t[7][(lo & 0xFF) as usize]
            ^ t[6][((lo >> 8) & 0xFF) as usize]
            ^ t[5][((lo >> 16) & 0xFF) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][(hi & 0xFF) as usize]
            ^ t[2][((hi >> 8) & 0xFF) as usize]
            ^ t[1][((hi >> 16) & 0xFF) as usize]
            ^ t[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ t[0][((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

/// FNV-1a 64-bit over a byte string — the snapshot's content-hash
/// primitive (no external hash crates; stability across builds matters
/// more than collision strength here, and the hash is backed by full
/// canonical bytes wherever equality is load-bearing).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    fnv1a64_update(0xcbf2_9ce4_8422_2325, bytes)
}

/// Streaming FNV-1a 64: folds `bytes` into running state `h`. Chaining
/// updates over consecutive chunks equals [`fnv1a64`] over their
/// concatenation — record hashes split into a cached immutable prefix
/// and a cheap mutable tail (see [`node_record_hash_from_prefix`]).
pub(crate) fn fnv1a64_update(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

// ---------------------------------------------------------------------------
// Content hashing: identity-keyed record hashes, combined order-free
// ---------------------------------------------------------------------------

/// Record-tag bytes giving each record class its own FNV domain.
const H_NODE: u8 = 1;
const H_EDGE: u8 = 2;
const H_REF_EDGE: u8 = 3;
const H_EFFECT: u8 = 4;
const H_POINTS_TO: u8 = 5;

/// The 16-byte identity of an abstract node: `(method, pc, elem_rank)`.
/// Records hash node *identities*, never canonical indices, so inserting
/// a node renumbers its neighbours without changing any other record's
/// hash — what lets [`crate::incr::IncrementalCsr`] maintain the content
/// hash in O(delta) per absorb.
fn identity_bytes(out: &mut [u8], instr: InstrId, elem: CostElem) {
    out[0..4].copy_from_slice(&instr.method.0.to_le_bytes());
    out[4..8].copy_from_slice(&instr.pc.to_le_bytes());
    out[8..16].copy_from_slice(&elem_rank(elem).to_le_bytes());
}

/// FNV state after hashing a node record's immutable part (tag,
/// identity, kind). Frequency is the only field an absorb can change on
/// a surviving node, so the incremental view caches this prefix and
/// folds just the 8 frequency bytes per touched node.
pub(crate) fn node_record_prefix(instr: InstrId, elem: CostElem, kind: NodeKind) -> u64 {
    let mut b = [0u8; 18];
    b[0] = H_NODE;
    identity_bytes(&mut b[1..17], instr, elem);
    b[17] = kind.code();
    fnv1a64(&b)
}

/// Completes a node record hash from its cached prefix and the current
/// frequency.
pub(crate) fn node_record_hash_from_prefix(prefix: u64, freq: u64) -> u64 {
    fnv1a64_update(prefix, &freq.to_le_bytes())
}

/// Hash of one `node` record: identity, kind, frequency. Doubles as the
/// per-node content hash the incremental analysis layer compares across
/// absorbs.
pub(crate) fn node_record_hash(instr: InstrId, elem: CostElem, kind: NodeKind, freq: u64) -> u64 {
    node_record_hash_from_prefix(node_record_prefix(instr, elem, kind), freq)
}

fn endpoint_pair_hash(tag: u8, a: (InstrId, CostElem), b: (InstrId, CostElem)) -> u64 {
    let mut bytes = [0u8; 33];
    bytes[0] = tag;
    identity_bytes(&mut bytes[1..17], a.0, a.1);
    identity_bytes(&mut bytes[17..33], b.0, b.1);
    fnv1a64(&bytes)
}

/// Hash of one dependence `edge` record, by endpoint identities.
pub(crate) fn edge_record_hash(a: (InstrId, CostElem), b: (InstrId, CostElem)) -> u64 {
    endpoint_pair_hash(H_EDGE, a, b)
}

/// Hash of one `refedge` record, by endpoint identities.
pub(crate) fn refedge_record_hash(s: (InstrId, CostElem), a: (InstrId, CostElem)) -> u64 {
    endpoint_pair_hash(H_REF_EDGE, s, a)
}

/// Hash of one `effect` record: owning node identity plus the packed
/// effect code.
pub(crate) fn effect_record_hash(k: (InstrId, CostElem), e: &HeapEffect) -> u64 {
    let (tag, a, b, c) = effect_code(e);
    let mut bytes = [0u8; 33];
    bytes[0] = H_EFFECT;
    identity_bytes(&mut bytes[1..17], k.0, k.1);
    bytes[17..21].copy_from_slice(&tag.to_le_bytes());
    bytes[21..25].copy_from_slice(&a.to_le_bytes());
    bytes[25..29].copy_from_slice(&b.to_le_bytes());
    bytes[29..33].copy_from_slice(&c.to_le_bytes());
    fnv1a64(&bytes)
}

/// Hash of one `pointsto` record.
pub(crate) fn pointsto_record_hash(site: TaggedSite, field: FieldKey, target: TaggedSite) -> u64 {
    let mut bytes = [0u8; 21];
    bytes[0] = H_POINTS_TO;
    bytes[1..5].copy_from_slice(&site.site.0.to_le_bytes());
    bytes[5..9].copy_from_slice(&site.slot.to_le_bytes());
    bytes[9..13].copy_from_slice(&field_code(field).to_le_bytes());
    bytes[13..17].copy_from_slice(&target.site.0.to_le_bytes());
    bytes[17..21].copy_from_slice(&target.slot.to_le_bytes());
    fnv1a64(&bytes)
}

/// Per-class record-hash accumulators: wrapping sums of the record
/// hashes above, plus the node and edge counts. Wrapping addition is
/// commutative, so each sum is a multiset hash — independent of
/// iteration order and updatable in O(1) per changed record.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct ContentSums {
    pub nodes: u64,
    pub edges: u64,
    pub node_sum: u64,
    pub edge_sum: u64,
    pub ref_sum: u64,
    pub eff_sum: u64,
    pub pts_sum: u64,
}

/// Folds the meta scalars and the per-class sums into the final content
/// hash — the one place the combination order is fixed.
pub(crate) fn combine_content_hash(
    instr_instances: u64,
    shadow_heap_bytes: u64,
    s: &ContentSums,
) -> u64 {
    let mut pre = [0u8; 72];
    for (slot, v) in [
        instr_instances,
        shadow_heap_bytes,
        s.nodes,
        s.edges,
        s.node_sum,
        s.edge_sum,
        s.ref_sum,
        s.eff_sum,
        s.pts_sum,
    ]
    .into_iter()
    .enumerate()
    {
        pre[slot * 8..slot * 8 + 8].copy_from_slice(&v.to_le_bytes());
    }
    fnv1a64(&pre)
}

/// The content hash of a graph: identity-keyed per-record FNV hashes
/// (nodes, edges, reference edges, effects, points-to) combined as
/// order-independent multiset sums, folded with the meta scalars. Two
/// graphs with the same abstract content hash identically regardless of
/// construction order; the hash keys the analysis-result cache and ties
/// a snapshot to its source graph. Because records are keyed by node
/// *identity* rather than canonical index, the incremental view
/// ([`crate::incr::IncrementalCsr`]) maintains this hash in O(delta)
/// per absorb.
pub fn content_hash(gcost: &CostGraph) -> u64 {
    let g = gcost.graph();
    let mut sums = ContentSums::default();
    for (id, n) in g.iter() {
        sums.nodes += 1;
        sums.node_sum = sums
            .node_sum
            .wrapping_add(node_record_hash(n.instr, n.elem, n.kind, n.freq));
        if let Some(e) = gcost.effect(id) {
            sums.eff_sum = sums
                .eff_sum
                .wrapping_add(effect_record_hash((n.instr, n.elem), e));
        }
        for &s in g.succs(id) {
            let t = g.node(s);
            sums.edges += 1;
            sums.edge_sum = sums
                .edge_sum
                .wrapping_add(edge_record_hash((n.instr, n.elem), (t.instr, t.elem)));
        }
    }
    for (s, a) in gcost.ref_edges() {
        let (ns, na) = (g.node(s), g.node(a));
        sums.ref_sum = sums.ref_sum.wrapping_add(refedge_record_hash(
            (ns.instr, ns.elem),
            (na.instr, na.elem),
        ));
    }
    for site in gcost.objects() {
        for field in gcost.fields_of(site) {
            for target in gcost.points_to(site, field) {
                sums.pts_sum = sums
                    .pts_sum
                    .wrapping_add(pointsto_record_hash(site, field, target));
            }
        }
    }
    combine_content_hash(
        gcost.instr_instances(),
        gcost.shadow_heap_bytes() as u64,
        &sums,
    )
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// A malformed or corrupt snapshot, or an I/O failure while loading one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreError(pub String);

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "snapshot: {}", self.0)
    }
}

impl Error for StoreError {}

impl From<String> for StoreError {
    fn from(s: String) -> Self {
        StoreError(s)
    }
}

fn err<T>(message: impl Into<String>) -> Result<T, StoreError> {
    Err(StoreError(message.into()))
}

// ---------------------------------------------------------------------------
// The one unsafe corner: byte-slice reinterpretation
// ---------------------------------------------------------------------------

/// Zero-copy reinterpretation between `&[u64]` buffers and the typed
/// little-endian arrays they hold. This is the crate's only unsafe code;
/// each cast checks alignment and size first and the lifetime of the
/// output is tied to the input, so no misaligned, out-of-bounds, or
/// dangling view can be produced. On big-endian hosts the borrowed casts
/// are replaced by owned byte-order-converting decodes.
mod cast {
    #![allow(unsafe_code)]
    use std::borrow::Cow;

    /// Views the first `len` bytes of `words` as a byte slice.
    pub fn bytes(words: &[u64], len: usize) -> &[u8] {
        assert!(len <= words.len() * 8, "byte length exceeds backing words");
        // SAFETY: `u8` has alignment 1 and every bit pattern is valid;
        // the pointer and length stay inside `words`' allocation and the
        // returned lifetime is the input's.
        unsafe { std::slice::from_raw_parts(words.as_ptr().cast::<u8>(), len) }
    }

    macro_rules! le_slice {
        ($name:ident, $ty:ty) => {
            /// Views `bytes` as a little-endian array of the target type.
            /// `None` when the length is not a whole number of elements
            /// or (on borrowing hosts) the pointer is misaligned.
            pub fn $name(bytes: &[u8]) -> Option<Cow<'_, [$ty]>> {
                const W: usize = std::mem::size_of::<$ty>();
                if bytes.len() % W != 0 {
                    return None;
                }
                #[cfg(target_endian = "little")]
                {
                    if bytes.as_ptr() as usize % std::mem::align_of::<$ty>() != 0 {
                        return None;
                    }
                    // SAFETY: alignment and exact size were just checked;
                    // every bit pattern is a valid integer; the lifetime
                    // of the view is the input slice's.
                    Some(Cow::Borrowed(unsafe {
                        std::slice::from_raw_parts(bytes.as_ptr().cast::<$ty>(), bytes.len() / W)
                    }))
                }
                #[cfg(target_endian = "big")]
                {
                    Some(Cow::Owned(
                        bytes
                            .chunks_exact(W)
                            .map(|c| <$ty>::from_le_bytes(c.try_into().unwrap()))
                            .collect(),
                    ))
                }
            }
        };
    }

    le_slice!(le_u32s, u32);
    le_slice!(le_u64s, u64);
}

// ---------------------------------------------------------------------------
// Aligned file buffer
// ---------------------------------------------------------------------------

/// A file image held in 8-byte-aligned storage, so the typed section
/// views can borrow from it directly. One allocation for the whole file
/// — loading performs no per-node or per-section copies beyond this
/// single read.
#[derive(Debug, Clone)]
pub struct AlignedBuf {
    words: Vec<u64>,
    len: usize,
}

impl AlignedBuf {
    /// Copies `bytes` into aligned storage.
    pub fn from_bytes(bytes: &[u8]) -> AlignedBuf {
        let mut words = vec![0u64; bytes.len().div_ceil(8)];
        for (w, chunk) in words.iter_mut().zip(bytes.chunks(8)) {
            let mut b = [0u8; 8];
            b[..chunk.len()].copy_from_slice(chunk);
            // Native order: `as_bytes` reinterprets the words as raw
            // bytes, so packing must invert exactly that.
            *w = u64::from_ne_bytes(b);
        }
        AlignedBuf {
            words,
            len: bytes.len(),
        }
    }

    /// Reads a whole file into aligned storage.
    ///
    /// # Errors
    /// Propagates the underlying I/O error.
    pub fn load(path: impl AsRef<Path>) -> io::Result<AlignedBuf> {
        Ok(AlignedBuf::from_bytes(&fs::read(path)?))
    }

    /// The file image.
    pub fn as_bytes(&self) -> &[u8] {
        cast::bytes(&self.words, self.len)
    }
}

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn u32s_le(vals: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(vals.len() * 4);
    for &v in vals {
        push_u32(&mut out, v);
    }
    out
}

pub(crate) fn u64s_le(vals: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(vals.len() * 8);
    for &v in vals {
        push_u64(&mut out, v);
    }
    out
}

/// The header scalars of a snapshot, for the from-parts writer.
pub(crate) struct SnapshotMeta {
    pub content_hash: u64,
    pub nodes: u64,
    pub edges: u64,
    pub instr_instances: u64,
    pub shadow_heap_bytes: u64,
    pub total_instructions: u64,
}

/// Assembles a snapshot file from already-rendered section bodies (in
/// [`SECTION_IDS`] order). This is the single place that knows the
/// preamble/header/alignment layout; [`write_snapshot`] and the
/// incremental writer ([`crate::incr::IncrementalCsr`]) both feed it, so
/// their bytes can only differ if their section *contents* differ.
/// `crcs`, when supplied, must be the per-section CRC32s of `sections`
/// — the incremental writer caches them so an unchanged section is
/// never re-checksummed; `None` computes them here.
pub(crate) fn write_snapshot_sections<W: Write>(
    meta: &SnapshotMeta,
    sections: [&[u8]; 14],
    crcs: Option<&[u32; 14]>,
    mut w: W,
) -> io::Result<()> {
    let header_len = HEADER_FIXED_LEN + SECTION_ENTRY_LEN * sections.len();
    let mut offset = (PREAMBLE_LEN + header_len).next_multiple_of(8);
    let mut header = Vec::with_capacity(header_len);
    push_u32(&mut header, FORMAT_VERSION);
    push_u32(&mut header, sections.len() as u32);
    push_u64(&mut header, meta.content_hash);
    push_u64(&mut header, meta.nodes);
    push_u64(&mut header, meta.edges);
    push_u64(&mut header, meta.instr_instances);
    push_u64(&mut header, meta.shadow_heap_bytes);
    push_u64(&mut header, meta.total_instructions);
    for (i, (id, body)) in SECTION_IDS.iter().zip(sections).enumerate() {
        push_u32(&mut header, *id);
        push_u32(&mut header, 0);
        push_u64(&mut header, offset as u64);
        push_u64(&mut header, body.len() as u64);
        push_u32(&mut header, crcs.map_or_else(|| crc32(body), |c| c[i]));
        push_u32(&mut header, 0);
        offset = (offset + body.len()).next_multiple_of(8);
    }
    debug_assert_eq!(header.len(), header_len);

    w.write_all(&MAGIC)?;
    w.write_all(&(header_len as u32).to_le_bytes())?;
    w.write_all(&crc32(&header).to_le_bytes())?;
    w.write_all(&header)?;
    let mut written = PREAMBLE_LEN + header_len;
    for body in sections {
        let aligned = written.next_multiple_of(8);
        w.write_all(&[0u8; 8][..aligned - written])?;
        w.write_all(body)?;
        written = aligned + body.len();
    }
    Ok(())
}

/// Serializes `gcost` (plus the run's total instruction count, needed to
/// reproduce dead-value metrics offline) to snapshot format v1.
///
/// The output is canonical: nodes in [`canonical_order`] with sorted
/// adjacency, records sorted — the same abstract graph always produces
/// identical bytes.
///
/// # Errors
/// Propagates I/O errors from the writer.
pub fn write_snapshot<W: Write>(
    gcost: &CostGraph,
    total_instructions: u64,
    w: W,
) -> io::Result<()> {
    let g = gcost.graph();
    let n = g.num_nodes();
    let order = canonical_order(g);
    let csr = CsrGraph::build_ordered(g, &order);
    let mut canon = vec![0u32; n];
    for (new, &old) in order.iter().enumerate() {
        canon[old.index()] = new as u32;
    }

    let mut node_instr = Vec::with_capacity(2 * n);
    let mut node_elem = Vec::with_capacity(n);
    for &old in &order {
        let node = g.node(old);
        node_instr.push(node.instr.method.0);
        node_instr.push(node.instr.pc);
        node_elem.push(elem_rank(node.elem));
    }

    let mut effects = Vec::new();
    for (new, &old) in order.iter().enumerate() {
        if let Some(e) = gcost.effect(old) {
            let (tag, a, b, c) = effect_code(e);
            effects.extend_from_slice(&[new as u32, tag, a, b, c]);
        }
    }

    let mut ref_edges: Vec<(u32, u32)> = gcost
        .ref_edges()
        .map(|(s, a)| (canon[s.index()], canon[a.index()]))
        .collect();
    ref_edges.sort_unstable();
    let ref_edges: Vec<u32> = ref_edges.into_iter().flat_map(|(a, b)| [a, b]).collect();

    let mut points_to = Vec::new();
    for site in gcost.objects() {
        for field in gcost.fields_of(site) {
            for target in gcost.points_to(site, field) {
                points_to.extend_from_slice(&[
                    site.site.0,
                    site.slot,
                    field_code(field),
                    target.site.0,
                    target.slot,
                ]);
            }
        }
    }

    let sections: [Vec<u8>; 14] = [
        csr.kind_codes().to_vec(),
        u64s_le(csr.freqs()),
        u32s_le(csr.succ_offsets()),
        u32s_le(csr.succ_targets()),
        u32s_le(csr.pred_offsets()),
        u32s_le(csr.pred_targets()),
        u64s_le(csr.reads_heap_words()),
        u64s_le(csr.writes_heap_words()),
        u64s_le(csr.consumer_words()),
        u32s_le(&node_instr),
        u64s_le(&node_elem),
        u32s_le(&effects),
        u32s_le(&ref_edges),
        u32s_le(&points_to),
    ];

    write_snapshot_sections(
        &SnapshotMeta {
            content_hash: content_hash(gcost),
            nodes: n as u64,
            edges: csr.num_edges() as u64,
            instr_instances: gcost.instr_instances(),
            shadow_heap_bytes: gcost.shadow_heap_bytes() as u64,
            total_instructions,
        },
        sections.each_ref().map(Vec::as_slice),
        None,
        w,
    )
}

/// [`write_snapshot`] to a file.
///
/// # Errors
/// Propagates I/O errors.
pub fn save_snapshot(
    gcost: &CostGraph,
    total_instructions: u64,
    path: impl AsRef<Path>,
) -> io::Result<()> {
    let mut buf = Vec::new();
    write_snapshot(gcost, total_instructions, &mut buf)?;
    fs::write(path, buf)
}

// ---------------------------------------------------------------------------
// Reading
// ---------------------------------------------------------------------------

/// A validated view of one snapshot file: the zero-copy [`CsrGraph`]
/// plus the label/effect tables needed to rebuild a [`CostGraph`].
/// Borrows from the [`AlignedBuf`] it was read from.
#[derive(Debug, Clone)]
pub struct Snapshot<'a> {
    csr: CsrGraph<'a>,
    content_hash: u64,
    instr_instances: u64,
    shadow_heap_bytes: u64,
    total_instructions: u64,
    /// `(method, pc)` pairs, canonical node order.
    node_instr: Cow<'a, [u32]>,
    /// [`elem_rank`] encodings, canonical node order.
    node_elem: Cow<'a, [u64]>,
    /// `(node, tag, a, b, c)` records.
    effects: Cow<'a, [u32]>,
    /// `(store, alloc)` pairs.
    ref_edges: Cow<'a, [u32]>,
    /// `(site, slot, field, site2, slot2)` records.
    points_to: Cow<'a, [u32]>,
}

impl<'a> Snapshot<'a> {
    /// The zero-copy CSR graph (arrays borrowed from the file buffer).
    pub fn csr(&self) -> &CsrGraph<'a> {
        &self.csr
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.csr.num_nodes()
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.csr.num_edges()
    }

    /// FNV-1a 64 of the canonical text export of the saved graph.
    pub fn content_hash(&self) -> u64 {
        self.content_hash
    }

    /// Instruction instances profiled (the paper's `I`).
    pub fn instr_instances(&self) -> u64 {
        self.instr_instances
    }

    /// Shadow-heap bytes at the end of the profiled run.
    pub fn shadow_heap_bytes(&self) -> usize {
        self.shadow_heap_bytes as usize
    }

    /// The run's total executed instructions (dead metrics' denominator).
    pub fn total_instructions(&self) -> u64 {
        self.total_instructions
    }

    /// The static instruction of node `i` (canonical order).
    pub fn node_instr(&self, i: usize) -> InstrId {
        InstrId::new(MethodId(self.node_instr[2 * i]), self.node_instr[2 * i + 1])
    }

    /// The abstract-domain element of node `i`.
    pub fn node_elem(&self, i: usize) -> CostElem {
        match self.node_elem[i] {
            0 => CostElem::NoCtx,
            r => CostElem::Ctx((r - 1) as u32),
        }
    }

    /// Rebuilds the full [`CostGraph`] (owned) from the snapshot tables.
    /// Node `i` of the file becomes [`NodeId`]`(i)`, so the result lines
    /// up index-for-index with [`csr`](Snapshot::csr); its canonical
    /// export is byte-identical to the saved graph's.
    pub fn to_cost_graph(&self) -> CostGraph {
        let n = self.num_nodes();
        let mut graph: DepGraph<CostElem> = DepGraph::new();
        for i in 0..n {
            let id = graph.intern(
                self.node_instr(i),
                self.node_elem(i),
                self.csr.kind(NodeId(i as u32)),
            );
            debug_assert_eq!(id.index(), i, "canonical nodes are unique");
            graph.set_freq(id, self.csr.freq(id));
        }
        let offs = self.csr.succ_offsets();
        let adj = self.csr.succ_targets();
        for i in 0..n {
            for &m in &adj[offs[i] as usize..offs[i + 1] as usize] {
                graph.add_edge(NodeId(i as u32), NodeId(m));
            }
        }
        let mut effects: HashMap<NodeId, HeapEffect> = HashMap::new();
        for rec in self.effects.chunks_exact(5) {
            let (node, tag, a, b, c) = (rec[0], rec[1], rec[2], rec[3], rec[4]);
            let site = TaggedSite {
                site: AllocSiteId(a),
                slot: b,
            };
            let eff = match tag {
                EFFECT_ALLOC => HeapEffect::Alloc { site },
                EFFECT_LOAD => HeapEffect::Load {
                    site,
                    field: decode_field(c),
                },
                EFFECT_STORE => HeapEffect::Store {
                    site,
                    field: decode_field(c),
                },
                EFFECT_LOAD_STATIC => HeapEffect::LoadStatic(StaticId(a)),
                _ => HeapEffect::StoreStatic(StaticId(a)),
            };
            effects.insert(NodeId(node), eff);
        }
        let mut ref_edges: HashSet<(NodeId, NodeId)> = HashSet::new();
        for pair in self.ref_edges.chunks_exact(2) {
            ref_edges.insert((NodeId(pair[0]), NodeId(pair[1])));
        }
        let mut points_to: HashMap<(TaggedSite, FieldKey), HashSet<TaggedSite>> = HashMap::new();
        for rec in self.points_to.chunks_exact(5) {
            let site = TaggedSite {
                site: AllocSiteId(rec[0]),
                slot: rec[1],
            };
            let target = TaggedSite {
                site: AllocSiteId(rec[3]),
                slot: rec[4],
            };
            points_to
                .entry((site, decode_field(rec[2])))
                .or_default()
                .insert(target);
        }
        CostGraph::from_parts(
            graph,
            ref_edges,
            effects,
            points_to,
            self.instr_instances,
            self.shadow_heap_bytes as usize,
        )
    }
}

struct SectionEntry {
    id: u32,
    offset: u64,
    len: u64,
    crc: u32,
}

fn read_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap())
}

fn read_u64(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap())
}

/// Parses and fully validates a snapshot, returning zero-copy views over
/// `buf`. Every declared length is bounds-checked before use, section
/// CRCs are verified, and the CSR invariants are revalidated — corrupt or
/// truncated input yields `Err`, never a panic or oversized allocation.
///
/// # Errors
/// Returns a [`StoreError`] naming the first problem found.
pub fn read_snapshot(buf: &AlignedBuf) -> Result<Snapshot<'_>, StoreError> {
    let bytes = buf.as_bytes();
    if bytes.len() < PREAMBLE_LEN {
        return err("file shorter than preamble");
    }
    if bytes[..8] != MAGIC {
        return err("bad magic");
    }
    let header_len = read_u32(bytes, 8) as usize;
    let header_crc = read_u32(bytes, 12);
    if header_len < HEADER_FIXED_LEN || bytes.len() - PREAMBLE_LEN < header_len {
        return err("header length out of range");
    }
    let header = &bytes[PREAMBLE_LEN..PREAMBLE_LEN + header_len];
    if crc32(header) != header_crc {
        return err("header CRC mismatch");
    }
    let version = read_u32(header, 0);
    if version != FORMAT_VERSION {
        return err(format!("unsupported format version {version}"));
    }
    let section_count = read_u32(header, 4) as usize;
    if section_count != SECTION_IDS.len()
        || header_len != HEADER_FIXED_LEN + SECTION_ENTRY_LEN * section_count
    {
        return err("unexpected section table shape");
    }
    let content_hash = read_u64(header, 8);
    let nodes = read_u64(header, 16);
    let edges = read_u64(header, 24);
    let instr_instances = read_u64(header, 32);
    let shadow_heap_bytes = read_u64(header, 40);
    let total_instructions = read_u64(header, 48);
    if nodes > u64::from(u32::MAX) || edges > u64::from(u32::MAX) {
        return err("node or edge count exceeds index width");
    }
    let n = nodes as usize;
    let e = edges as usize;

    let mut section_bytes: [&[u8]; 14] = [&[]; 14];
    for (i, want_id) in SECTION_IDS.iter().enumerate() {
        let at = HEADER_FIXED_LEN + SECTION_ENTRY_LEN * i;
        let entry = SectionEntry {
            id: read_u32(header, at),
            offset: read_u64(header, at + 8),
            len: read_u64(header, at + 16),
            crc: read_u32(header, at + 24),
        };
        if entry.id != *want_id {
            return err(format!("section {i}: unexpected id {}", entry.id));
        }
        if !entry.offset.is_multiple_of(8) {
            return err(format!("section {i}: misaligned offset"));
        }
        let file_len = bytes.len() as u64;
        if entry.offset > file_len || file_len - entry.offset < entry.len {
            return err(format!("section {i}: extends past end of file"));
        }
        let body = &bytes[entry.offset as usize..(entry.offset + entry.len) as usize];
        if crc32(body) != entry.crc {
            return err(format!("section {i}: CRC mismatch"));
        }
        section_bytes[i] = body;
    }

    // Declared lengths must agree with the header's node/edge counts
    // before anything is interpreted.
    let words = n.div_ceil(64);
    let expected: [(usize, usize); 11] = [
        (0, n),           // KIND
        (1, 8 * n),       // FREQ
        (2, 4 * (n + 1)), // SUCC_OFF
        (3, 4 * e),       // SUCC_ADJ
        (4, 4 * (n + 1)), // PRED_OFF
        (5, 4 * e),       // PRED_ADJ
        (6, 8 * words),   // READS_HEAP
        (7, 8 * words),   // WRITES_HEAP
        (8, 8 * words),   // CONSUMER
        (9, 8 * n),       // NODE_INSTR
        (10, 8 * n),      // NODE_ELEM
    ];
    for (i, want) in expected {
        if section_bytes[i].len() != want {
            return err(format!(
                "section {i}: length {} != expected {want}",
                section_bytes[i].len()
            ));
        }
    }
    if !section_bytes[11].len().is_multiple_of(EFFECT_RECORD) {
        return err("EFFECTS section not a whole number of records");
    }
    if !section_bytes[12].len().is_multiple_of(8) {
        return err("REF_EDGES section not a whole number of pairs");
    }
    if !section_bytes[13].len().is_multiple_of(POINTS_TO_RECORD) {
        return err("POINTS_TO section not a whole number of records");
    }

    let view_u32 = |i: usize| {
        cast::le_u32s(section_bytes[i]).ok_or(StoreError("misaligned u32 section".into()))
    };
    let view_u64 = |i: usize| {
        cast::le_u64s(section_bytes[i]).ok_or(StoreError("misaligned u64 section".into()))
    };

    let csr = CsrGraph::from_raw_parts(
        Cow::Borrowed(section_bytes[0]),
        view_u64(1)?,
        view_u32(2)?,
        view_u32(3)?,
        view_u32(4)?,
        view_u32(5)?,
        view_u64(6)?,
        view_u64(7)?,
        view_u64(8)?,
    )?;

    let node_instr = view_u32(9)?;
    let node_elem = view_u64(10)?;
    let effects = view_u32(11)?;
    let ref_edges = view_u32(12)?;
    let points_to = view_u32(13)?;

    // Elems must decode and canonical node keys must strictly increase —
    // which also guarantees uniqueness, so `to_cost_graph` interning
    // assigns NodeId(i) to file node i.
    for (i, &r) in node_elem.iter().enumerate() {
        if r > u64::from(u32::MAX) + 1 {
            return err(format!("node {i}: elem encoding out of range"));
        }
    }
    for i in 1..n {
        let prev = (
            node_instr[2 * (i - 1)],
            node_instr[2 * i - 1],
            node_elem[i - 1],
        );
        let cur = (node_instr[2 * i], node_instr[2 * i + 1], node_elem[i]);
        if prev >= cur {
            return err(format!("node {i}: canonical order violated"));
        }
    }
    for (r, rec) in effects.chunks_exact(5).enumerate() {
        if rec[0] as usize >= n {
            return err(format!("effect record {r}: node out of range"));
        }
        if rec[1] > EFFECT_STORE_STATIC {
            return err(format!("effect record {r}: unknown tag {}", rec[1]));
        }
    }
    for (r, pair) in ref_edges.chunks_exact(2).enumerate() {
        if pair[0] as usize >= n || pair[1] as usize >= n {
            return err(format!("ref edge {r}: node out of range"));
        }
    }

    Ok(Snapshot {
        csr,
        content_hash,
        instr_instances,
        shadow_heap_bytes,
        total_instructions,
        node_instr,
        node_elem,
        effects,
        ref_edges,
        points_to,
    })
}

// ---------------------------------------------------------------------------
// Verification report
// ---------------------------------------------------------------------------

fn section_name(id: u32) -> &'static str {
    match id {
        SEC_KIND => "kind",
        SEC_FREQ => "freq",
        SEC_SUCC_OFF => "succ_off",
        SEC_SUCC_ADJ => "succ_adj",
        SEC_PRED_OFF => "pred_off",
        SEC_PRED_ADJ => "pred_adj",
        SEC_READS_HEAP => "reads_heap",
        SEC_WRITES_HEAP => "writes_heap",
        SEC_CONSUMER => "consumer",
        SEC_NODE_INSTR => "node_instr",
        SEC_NODE_ELEM => "node_elem",
        SEC_EFFECTS => "effects",
        SEC_REF_EDGES => "ref_edges",
        SEC_POINTS_TO => "points_to",
        _ => "unknown",
    }
}

/// One section's integrity check in a [`VerifyReport`].
#[derive(Debug, Clone)]
pub struct SectionCheck {
    /// Section name, file order.
    pub name: &'static str,
    /// Declared byte length.
    pub len: u64,
    /// `Ok` when the declared extent is in bounds and its CRC matches.
    pub status: Result<(), String>,
}

/// The outcome of [`verify_snapshot`]: per-section CRC results plus the
/// first deep-validation failure — the report behind
/// `lowutil snapshot verify`.
#[derive(Debug, Clone)]
pub struct VerifyReport {
    /// Declared `(nodes, edges)`, once the header parses.
    pub declared: Option<(u64, u64)>,
    /// Declared content hash, once the header parses.
    pub content_hash: Option<u64>,
    /// Per-section checks in file order (empty when the header itself
    /// is unreadable — there is no trustworthy section table to walk).
    pub sections: Vec<SectionCheck>,
    /// First failure found by the full validator ([`read_snapshot`]);
    /// `None` when the file is a valid snapshot.
    pub error: Option<String>,
}

impl VerifyReport {
    /// Whether the file is a fully valid snapshot.
    pub fn is_ok(&self) -> bool {
        self.error.is_none()
    }
}

/// Checks `buf` as a snapshot, reporting per-section CRC status along
/// with the first deep-validation failure. Unlike [`read_snapshot`],
/// which stops at the first problem, every section is CRC-checked even
/// after one fails — a corruption report names *all* damaged sections,
/// not just the first.
pub fn verify_snapshot(buf: &AlignedBuf) -> VerifyReport {
    let bytes = buf.as_bytes();
    let mut report = VerifyReport {
        declared: None,
        content_hash: None,
        sections: Vec::new(),
        error: None,
    };
    // Header checks mirror `read_snapshot`'s prefix; past them the
    // section table is CRC-trusted and can be walked exhaustively.
    let header = 'hdr: {
        if bytes.len() < PREAMBLE_LEN {
            break 'hdr Err("file shorter than preamble".to_string());
        }
        if bytes[..8] != MAGIC {
            break 'hdr Err("bad magic".to_string());
        }
        let header_len = read_u32(bytes, 8) as usize;
        let header_crc = read_u32(bytes, 12);
        if header_len < HEADER_FIXED_LEN || bytes.len() - PREAMBLE_LEN < header_len {
            break 'hdr Err("header length out of range".to_string());
        }
        let header = &bytes[PREAMBLE_LEN..PREAMBLE_LEN + header_len];
        if crc32(header) != header_crc {
            break 'hdr Err("header CRC mismatch".to_string());
        }
        let version = read_u32(header, 0);
        if version != FORMAT_VERSION {
            break 'hdr Err(format!("unsupported format version {version}"));
        }
        let section_count = read_u32(header, 4) as usize;
        if section_count != SECTION_IDS.len()
            || header_len != HEADER_FIXED_LEN + SECTION_ENTRY_LEN * section_count
        {
            break 'hdr Err("unexpected section table shape".to_string());
        }
        Ok(header)
    };
    let header = match header {
        Ok(h) => h,
        Err(e) => {
            report.error = Some(e);
            return report;
        }
    };
    report.content_hash = Some(read_u64(header, 8));
    report.declared = Some((read_u64(header, 16), read_u64(header, 24)));
    for (i, want_id) in SECTION_IDS.iter().enumerate() {
        let at = HEADER_FIXED_LEN + SECTION_ENTRY_LEN * i;
        let id = read_u32(header, at);
        let offset = read_u64(header, at + 8);
        let len = read_u64(header, at + 16);
        let crc = read_u32(header, at + 24);
        let status = if id != *want_id {
            Err(format!("unexpected id {id}"))
        } else if !offset.is_multiple_of(8) {
            Err("misaligned offset".to_string())
        } else if offset > bytes.len() as u64 || bytes.len() as u64 - offset < len {
            Err("extends past end of file".to_string())
        } else {
            let body = &bytes[offset as usize..(offset + len) as usize];
            if crc32(body) != crc {
                Err("CRC mismatch".to_string())
            } else {
                Ok(())
            }
        };
        report.sections.push(SectionCheck {
            name: section_name(*want_id),
            len,
            status,
        });
    }
    if let Err(e) = read_snapshot(buf) {
        report.error = Some(e.0);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::write_cost_graph;
    use crate::gcost::{CostGraphConfig, CostProfiler};
    use lowutil_ir::parse_program;
    use lowutil_vm::Vm;

    fn sample() -> (CostGraph, u64) {
        let p = parse_program(
            r#"
native print/1
class Box { v w }
method main/0 {
  b = new Box
  i = 0
  lim = 25
loop:
  x = i + i
  b.v = x
  y = b.v
  b.w = y
  native print(y)
  one = 1
  i = i + one
  if i < lim goto loop
  return
}
"#,
        )
        .unwrap();
        let mut prof = CostProfiler::new(&p, CostGraphConfig::default());
        let out = Vm::new(&p).run(&mut prof).unwrap();
        (prof.finish(), out.instructions_executed)
    }

    fn saved_bytes(g: &CostGraph, total: u64) -> Vec<u8> {
        let mut buf = Vec::new();
        write_snapshot(g, total, &mut buf).unwrap();
        buf
    }

    #[test]
    fn save_is_deterministic() {
        let (g, total) = sample();
        assert_eq!(saved_bytes(&g, total), saved_bytes(&g, total));
    }

    #[test]
    fn round_trip_preserves_canonical_export() {
        let (g, total) = sample();
        let buf = AlignedBuf::from_bytes(&saved_bytes(&g, total));
        let snap = read_snapshot(&buf).unwrap();
        assert_eq!(snap.total_instructions(), total);
        assert_eq!(snap.content_hash(), content_hash(&g));
        let g2 = snap.to_cost_graph();
        let (mut a, mut b) = (Vec::new(), Vec::new());
        write_cost_graph(&g, &mut a).unwrap();
        write_cost_graph(&g2, &mut b).unwrap();
        assert_eq!(a, b, "canonical export survives the binary round trip");
        assert_eq!(content_hash(&g2), snap.content_hash());
    }

    #[test]
    fn loaded_csr_matches_rebuilt_csr_sums() {
        let (g, total) = sample();
        let buf = AlignedBuf::from_bytes(&saved_bytes(&g, total));
        let snap = read_snapshot(&buf).unwrap();
        let g2 = snap.to_cost_graph();
        let rebuilt = CsrGraph::build(g2.graph());
        let csr = snap.csr();
        assert_eq!(csr.num_nodes(), rebuilt.num_nodes());
        assert_eq!(csr.num_edges(), rebuilt.num_edges());
        let mut s1 = crate::csr::TraversalScratch::for_graph(csr);
        let mut s2 = crate::csr::TraversalScratch::for_graph(&rebuilt);
        for i in 0..csr.num_nodes() as u32 {
            let id = NodeId(i);
            assert_eq!(
                csr.heap_bounded_backward_sum(&mut s1, id),
                rebuilt.heap_bounded_backward_sum(&mut s2, id)
            );
            assert_eq!(
                csr.heap_bounded_forward_sum(&mut s1, id),
                rebuilt.heap_bounded_forward_sum(&mut s2, id)
            );
        }
    }

    #[test]
    fn truncation_and_bitflips_are_rejected() {
        let (g, total) = sample();
        let bytes = saved_bytes(&g, total);
        for cut in [0, 7, 15, 16, 40, bytes.len() / 2, bytes.len() - 1] {
            let buf = AlignedBuf::from_bytes(&bytes[..cut]);
            assert!(read_snapshot(&buf).is_err(), "truncation at {cut} accepted");
        }
        for at in [0, 9, 13, 20, 60, bytes.len() / 2, bytes.len() - 3] {
            let mut bad = bytes.clone();
            bad[at] ^= 0x40;
            let buf = AlignedBuf::from_bytes(&bad);
            assert!(read_snapshot(&buf).is_err(), "bit flip at {at} accepted");
        }
    }

    #[test]
    fn verify_report_names_every_damaged_section() {
        let (g, total) = sample();
        let bytes = saved_bytes(&g, total);

        let good = verify_snapshot(&AlignedBuf::from_bytes(&bytes));
        assert!(good.is_ok(), "{:?}", good.error);
        assert_eq!(good.sections.len(), SECTION_IDS.len());
        assert!(good.sections.iter().all(|s| s.status.is_ok()));
        assert_eq!(good.content_hash, Some(content_hash(&g)));
        let n = g.graph().num_nodes() as u64;
        assert_eq!(good.declared.map(|(nodes, _)| nodes), Some(n));

        // Corrupt two distinct section bodies: read_snapshot stops at
        // the first, the report must flag both. KIND and NODE_INSTR are
        // node-sized, so both are non-empty for any non-trivial graph.
        let mut bad = bytes.clone();
        let mut hit = Vec::new();
        for i in [0, 9] {
            let at = HEADER_FIXED_LEN + SECTION_ENTRY_LEN * i;
            let offset = read_u64(&bytes[PREAMBLE_LEN..], at + 8) as usize;
            let len = read_u64(&bytes[PREAMBLE_LEN..], at + 16);
            assert!(len > 0, "test wants non-empty section {i}");
            bad[offset] ^= 0x01;
            hit.push(section_name(SECTION_IDS[i]));
        }
        let report = verify_snapshot(&AlignedBuf::from_bytes(&bad));
        assert!(!report.is_ok());
        let flagged: Vec<&str> = report
            .sections
            .iter()
            .filter(|s| s.status.is_err())
            .map(|s| s.name)
            .collect();
        assert_eq!(flagged, hit, "every damaged section flagged");

        // An unreadable header yields a bare error with no section table.
        let report = verify_snapshot(&AlignedBuf::from_bytes(&bytes[..PREAMBLE_LEN - 1]));
        assert!(!report.is_ok() && report.sections.is_empty());
        let mut bad = bytes.clone();
        bad[PREAMBLE_LEN + 2] ^= 0x10; // inside the header body
        let report = verify_snapshot(&AlignedBuf::from_bytes(&bad));
        assert_eq!(report.error.as_deref(), Some("header CRC mismatch"));
        assert!(report.sections.is_empty());
    }

    #[test]
    fn content_hash_tracks_content_not_construction() {
        let (g, _) = sample();
        // Round-tripping through the text export reorders construction
        // but not content.
        let mut buf = Vec::new();
        write_cost_graph(&g, &mut buf).unwrap();
        let g2 = crate::export::read_cost_graph(buf.as_slice()).unwrap();
        assert_eq!(content_hash(&g), content_hash(&g2));
    }
}
