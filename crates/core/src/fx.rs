//! A fast, non-cryptographic hasher for the profiler's hot maps.
//!
//! This is the Fx hash function used by rustc (a multiply-xor-rotate
//! per word), written out locally because the build environment cannot
//! fetch the `rustc-hash` crate. The profiler keys its hot maps by
//! small dense ids (`InstrId`, `NodeId`, `TaggedSite`), for which
//! SipHash's DoS resistance buys nothing and costs a large fraction of
//! per-event time.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;
/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;
/// The `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// rustc's Fx hash: for each input word, rotate the state, xor in the
/// word, and multiply by a fixed odd constant.
#[derive(Debug, Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            self.add_to_hash(word);
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(value: &T) -> u64 {
        let mut h = FxHasher::default();
        value.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_and_input_sensitive() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_ne!(hash_of(&42u64), hash_of(&43u64));
        assert_ne!(hash_of(&(1u32, 2u32)), hash_of(&(2u32, 1u32)));
    }

    #[test]
    fn partial_byte_writes_hash() {
        let mut h = FxHasher::default();
        h.write(b"abcdefghijk"); // 8-byte chunk + 3-byte remainder
        let a = h.finish();
        let mut h = FxHasher::default();
        h.write(b"abcdefghijl");
        assert_ne!(a, h.finish());
    }

    #[test]
    fn maps_and_sets_work() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        let mut s: FxHashSet<(u32, u32)> = FxHashSet::default();
        assert!(s.insert((1, 2)));
        assert!(!s.insert((1, 2)));
    }
}
