//! Construction of `G_cost`: the abstract thin dependence graph for
//! cost-benefit analysis.
//!
//! [`CostProfiler`] implements the paper's Figure 4 instrumentation
//! semantics as a [`Tracer`] over the VM's event stream:
//!
//! * every value-producing instruction becomes (or bumps) an abstract node
//!   annotated with the *context slot* `h(c)` of the current
//!   receiver-object allocation-site chain `c`;
//! * predicates and natives become context-free *consumer* nodes;
//! * def-use edges are discovered online through shadow locations: every
//!   local, instance field, static field, and array element has a shadow
//!   slot holding the node that last wrote it;
//! * the thin-slicing rule is inherited from the VM's events: base
//!   pointers of heap accesses are not uses, array indices are;
//! * allocations tag the new object (on the shadow heap) with the
//!   context-annotated allocation site `(new X)^{h(c)}`, and every store
//!   into a tagged object adds a *reference edge* from the store node to
//!   the matching allocation node, plus a points-to record used to build
//!   object reference trees (Definition 7);
//! * tracking data for actuals and return values flows through the
//!   call/return events, mirroring the paper's tracking stack.
//!
//! The finished artifact is a [`CostGraph`], the input to every analysis in
//! `lowutil-analyses`.

use crate::context::{slot_of, thread_base, ConflictStats, ContextStack};
use crate::dense::{DenseDomain, DenseInterner, InstrIndexer};
use crate::fx::{FxHashMap, FxHashSet};
use crate::graph::{DepGraph, NodeId, NodeKind};
use lowutil_ir::{AllocSiteId, FieldId, InstrId, Local, StaticId, ThreadId, Value};
use lowutil_vm::{Event, EventSink, FrameInfo, ShadowHeap, ShadowStack, Tracer};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// The abstract-domain element of a `G_cost` node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CostElem {
    /// An encoded context slot `h(c) ∈ [0, s)`.
    Ctx(u32),
    /// Predicate and native nodes carry no context (the paper's `a°`).
    NoCtx,
}

impl fmt::Display for CostElem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CostElem::Ctx(s) => write!(f, "^{s}"),
            CostElem::NoCtx => write!(f, "°"),
        }
    }
}

impl DenseDomain for CostElem {
    /// `NoCtx` is 0 and slot `k` is `k + 1`; with `s` context slots the
    /// domain cardinality is exactly `s + 1`.
    #[inline]
    fn dense_index(&self) -> usize {
        match *self {
            CostElem::NoCtx => 0,
            CostElem::Ctx(k) => k as usize + 1,
        }
    }
}

/// A context-annotated allocation site `(new X)^{h(c)}` — the paper's
/// static object abstraction, refined by the allocation context so that
/// reference edges connect effects on (probabilistically) the same object
/// population.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaggedSite {
    /// The allocation site.
    pub site: AllocSiteId,
    /// The context slot the allocation executed under.
    pub slot: u32,
}

impl fmt::Display for TaggedSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}^{}", self.site, self.slot)
    }
}

/// Which member of an object a heap effect touches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FieldKey {
    /// An instance field.
    Field(FieldId),
    /// Any array element (elements are merged, like the paper's `ELM`).
    Element,
    /// The array length header.
    Length,
}

impl fmt::Display for FieldKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldKey::Field(id) => write!(f, "{id}"),
            FieldKey::Element => write!(f, "ELM"),
            FieldKey::Length => write!(f, "LEN"),
        }
    }
}

/// The heap effect recorded for a node (the paper's environment `H`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeapEffect {
    /// `('U', O^h, ·)` — the node allocates.
    Alloc {
        /// The context-annotated site.
        site: TaggedSite,
    },
    /// `('C', O^h, f)` — the node reads a member of an object.
    Load {
        /// The base object's tag.
        site: TaggedSite,
        /// The member read.
        field: FieldKey,
    },
    /// `('B', O^h, f)` — the node writes a member of an object.
    Store {
        /// The base object's tag.
        site: TaggedSite,
        /// The member written.
        field: FieldKey,
    },
    /// A static-field read.
    LoadStatic(StaticId),
    /// A static-field write.
    StoreStatic(StaticId),
}

/// Profiler configuration.
#[derive(Debug, Clone, Copy)]
pub struct CostGraphConfig {
    /// Number of context slots `s` (the paper evaluates 8 and 16).
    pub slots: u32,
    /// Record exact chains per slot to compute the CR column. Costs
    /// memory; disable for overhead benchmarking.
    pub track_conflicts: bool,
    /// When `true`, profiling is disarmed until a `phase_begin` native
    /// fires (the paper's steady-state-only tracking mode).
    pub phase_limited: bool,
    /// Ablation switch: when `true`, base pointers of heap accesses are
    /// treated as uses (traditional dynamic slicing) instead of being
    /// excluded (thin slicing). The paper argues thin slicing attributes
    /// data-structure formation costs correctly; this flag lets the
    /// degradation be measured.
    pub traditional_uses: bool,
    /// Ablation switch for §3.2 "considering vs ignoring control decision
    /// making": when `true`, every value-producing node receives an edge
    /// from the predicate nodes it is (statically) control-dependent on,
    /// so control work flows into value costs. The paper ignores control
    /// (the default) to keep reports precise.
    pub control_edges: bool,
    /// Use the flat `|I| × |D|` interning table ([`DenseInterner`])
    /// instead of hashing `(InstrId, CostElem)` per event. Produces a
    /// structurally identical graph; the switch exists for benchmarking
    /// the two paths against each other.
    pub dense_interning: bool,
    /// Per-instruction inline caches on the hot context-node path: each
    /// static instruction remembers the last `(g, NodeId)` it resolved
    /// to, so the common monomorphic case (an instruction re-executing
    /// under the same encoded context) skips slot hashing, conflict
    /// recording, and the interning table entirely. Produces an
    /// identical graph; the switch exists for benchmarking the cache.
    pub inline_caches: bool,
}

impl Default for CostGraphConfig {
    fn default() -> Self {
        CostGraphConfig {
            slots: 16,
            track_conflicts: true,
            phase_limited: false,
            traditional_uses: false,
            control_edges: false,
            dense_interning: true,
            inline_caches: true,
        }
    }
}

/// Builds `G_cost` from an instruction-event *stream* — it does not care
/// whether events come from a live VM run or from a replayed trace.
///
/// This is the pure pipeline stage behind [`CostProfiler`]: it implements
/// [`EventSink`], so it can terminate a replay pipeline directly
/// (`TraceReader::replay(&mut builder)`), while [`CostProfiler`] adapts it
/// to the VM's [`Tracer`] hook for live profiling.
#[derive(Debug)]
pub struct GraphBuilder {
    config: CostGraphConfig,
    graph: DepGraph<CostElem>,
    /// Per-thread interpreter-shadow state, indexed by `ThreadId`. The
    /// heap, statics, and graph are shared (the guest heap is shared);
    /// stacks, contexts, and call plumbing are thread-local.
    threads: Vec<ThreadState>,
    /// The thread the stream is currently delivering events for.
    cur: usize,
    /// Actual-argument shadows stashed by a `Spawn`, consumed when the
    /// child thread's root frame is pushed (the cross-thread METHOD
    /// ENTRY hand-off).
    spawn_args: FxHashMap<u32, Vec<Option<NodeId>>>,
    /// The node that produced each finished thread's return value,
    /// recorded at the thread's root frame pop and consumed by `Join`.
    thread_rets: FxHashMap<u32, Option<NodeId>>,
    shadow_heap: ShadowHeap<Option<NodeId>, Option<TaggedSite>>,
    shadow_statics: Vec<Option<NodeId>>,
    conflicts: ConflictStats,
    ref_edges: FxHashSet<(NodeId, NodeId)>,
    /// Heap effect per node, indexed densely by [`NodeId`] (at most one
    /// effect per node, and node ids are small and dense — no map
    /// needed on the per-event store/load path).
    effects: Vec<Option<HeapEffect>>,
    alloc_nodes: FxHashMap<TaggedSite, NodeId>,
    points_to: FxHashMap<(TaggedSite, FieldKey), FxHashSet<TaggedSite>>,
    armed: bool,
    instr_instances: u64,
    /// Static control-dependence table (only populated under
    /// [`CostGraphConfig::control_edges`]): instruction → controlling
    /// branch instructions.
    control_deps: FxHashMap<InstrId, Vec<InstrId>>,
    /// Global dense index per static instruction (for the dense table).
    indexer: InstrIndexer,
    /// The flat `|I| × |D|` interning table, when
    /// [`CostGraphConfig::dense_interning`] is on.
    dense: Option<DenseInterner>,
    /// Per-instruction inline cache (`(g, node)` indexed by the dense
    /// instruction index), when [`CostGraphConfig::inline_caches`] is on.
    icache: Vec<(u64, NodeId)>,
}

/// The thread-local slice of the builder's state: the shadow stack, the
/// receiver-chain context stack (based at
/// [`thread_base`](crate::context::thread_base) so contexts from
/// different threads never merge), and the call/return tracking plumbing
/// — all of which follow one thread's control flow.
#[derive(Debug)]
struct ThreadState {
    shadow_stack: ShadowStack<Option<NodeId>>,
    contexts: ContextStack,
    pending_args: Vec<Option<NodeId>>,
    ret_stash: Option<NodeId>,
}

impl ThreadState {
    fn new(tid: ThreadId) -> Self {
        ThreadState {
            shadow_stack: ShadowStack::new(),
            contexts: ContextStack::with_base(thread_base(tid)),
            pending_args: Vec::new(),
            ret_stash: None,
        }
    }
}

/// Empty inline-cache entry. `g = 0` is the valid empty context, so the
/// node component is the sentinel; node ids are dense from 0 and a graph
/// would need 2³²−1 nodes before colliding with it.
pub(crate) const IC_EMPTY: NodeId = NodeId(u32::MAX);

/// A fresh inline-cache table: one empty entry per static instruction
/// when the cache is enabled, zero-length (never consulted) otherwise.
pub(crate) fn new_icache(enabled: bool, num_instrs: usize) -> Vec<(u64, NodeId)> {
    if enabled {
        vec![(0, IC_EMPTY); num_instrs]
    } else {
        Vec::new()
    }
}

/// Builds the static control-dependence table consulted under
/// [`CostGraphConfig::control_edges`]. Shared by the live builder and the
/// per-shard replay builders so every construction path sees identical
/// control edges.
pub(crate) fn build_control_deps(
    program: &lowutil_ir::Program,
    config: &CostGraphConfig,
) -> FxHashMap<InstrId, Vec<InstrId>> {
    let mut control_deps = FxHashMap::default();
    if config.control_edges {
        for (mi, method) in program.methods().iter().enumerate() {
            let cfg = lowutil_ir::Cfg::build(method);
            let deps = cfg.control_dependencies();
            for (pc, branches) in deps.into_iter().enumerate() {
                if branches.is_empty() {
                    continue;
                }
                let mid = lowutil_ir::MethodId(mi as u32);
                control_deps.insert(
                    InstrId::new(mid, pc as u32),
                    branches.into_iter().map(|b| InstrId::new(mid, b)).collect(),
                );
            }
        }
    }
    control_deps
}

impl GraphBuilder {
    /// Creates a builder. The `program` is consulted only for static
    /// control-dependence tables when
    /// [`CostGraphConfig::control_edges`] is set; the builder otherwise
    /// consumes the event stream alone.
    pub fn new(program: &lowutil_ir::Program, config: CostGraphConfig) -> Self {
        let control_deps = build_control_deps(program, &config);
        let indexer = InstrIndexer::new(program);
        let dense = config.dense_interning.then(|| {
            // |D| = s context slots + NoCtx.
            DenseInterner::new(indexer.num_instrs(), config.slots as usize + 1)
        });
        let icache = new_icache(config.inline_caches, indexer.num_instrs());
        GraphBuilder {
            config,
            graph: DepGraph::new(),
            threads: vec![ThreadState::new(ThreadId::MAIN)],
            cur: 0,
            spawn_args: FxHashMap::default(),
            thread_rets: FxHashMap::default(),
            shadow_heap: ShadowHeap::new(None),
            shadow_statics: Vec::new(),
            conflicts: ConflictStats::new(),
            ref_edges: FxHashSet::default(),
            effects: Vec::new(),
            alloc_nodes: FxHashMap::default(),
            points_to: FxHashMap::default(),
            armed: !config.phase_limited,
            instr_instances: 0,
            control_deps,
            indexer,
            dense,
            icache,
        }
    }

    /// The state of the thread currently delivering events.
    fn st(&self) -> &ThreadState {
        &self.threads[self.cur]
    }

    fn st_mut(&mut self) -> &mut ThreadState {
        &mut self.threads[self.cur]
    }

    /// Switches the builder to `tid`'s thread-local state, creating it
    /// on first sight. A new thread's pending arguments are whatever the
    /// spawning thread stashed for it. Idempotent for the current
    /// thread, so callers may invoke it per segment unconditionally.
    pub fn thread(&mut self, tid: ThreadId) {
        let idx = tid.index();
        if idx == self.cur && idx < self.threads.len() {
            return;
        }
        while self.threads.len() <= idx {
            let t = ThreadId(self.threads.len() as u32);
            let mut state = ThreadState::new(t);
            if let Some(args) = self.spawn_args.remove(&t.0) {
                state.pending_args = args;
            }
            self.threads.push(state);
        }
        self.cur = idx;
    }

    fn shadow(&self, l: Local) -> Option<NodeId> {
        *self.st().shadow_stack.top().get(l.index())
    }

    fn set_shadow(&mut self, l: Local, n: Option<NodeId>) {
        self.st_mut().shadow_stack.top_mut().set(l.index(), n);
    }

    /// Interns `(at, elem)` through the dense table when enabled, the
    /// hashed graph index otherwise. Both paths produce identical
    /// graphs (the dense table only fronts [`DepGraph::intern`]).
    #[inline]
    fn intern(&mut self, at: InstrId, elem: CostElem, kind: NodeKind) -> NodeId {
        match &mut self.dense {
            Some(table) => table.intern(&mut self.graph, &self.indexer, at, elem, kind),
            None => self.graph.intern(at, elem, kind),
        }
    }

    /// Interns + bumps the node for `at` under the current context.
    ///
    /// The inline cache short-circuits the monomorphic case: when `at`
    /// re-executes under the same encoded context `g` as last time, the
    /// resolved node, its conflict record (set-idempotent per
    /// `(at, slot, g)`), and its control-dependence edges (idempotent in
    /// [`DepGraph::add_edge`]) are all unchanged from the previous miss,
    /// so only the frequency bump remains. Entries are never
    /// invalidated — nodes are append-only and a stale `g` just misses.
    #[inline]
    fn ctx_node(&mut self, at: InstrId, kind: NodeKind) -> NodeId {
        let g = self.st().contexts.current();
        if self.config.inline_caches {
            let idx = self.indexer.index(at);
            let (cached_g, cached_n) = self.icache[idx];
            if cached_n != IC_EMPTY && cached_g == g {
                self.graph.bump(cached_n);
                return cached_n;
            }
            let n = self.ctx_node_slow(at, kind, g);
            self.icache[idx] = (g, n);
            return n;
        }
        self.ctx_node_slow(at, kind, g)
    }

    fn ctx_node_slow(&mut self, at: InstrId, kind: NodeKind, g: u64) -> NodeId {
        let slot = slot_of(g, self.config.slots);
        if self.config.track_conflicts {
            self.conflicts.record(at, slot, g);
        }
        let n = self.intern(at, CostElem::Ctx(slot), kind);
        self.graph.bump(n);
        if self.config.control_edges {
            if let Some(branches) = self.control_deps.get(&at) {
                for b in branches.clone() {
                    let pnode = self.intern(b, CostElem::NoCtx, NodeKind::Predicate);
                    self.graph.add_edge(pnode, n);
                }
            }
        }
        n
    }

    /// Interns + bumps a context-free consumer node.
    fn consumer_node(&mut self, at: InstrId, kind: NodeKind) -> NodeId {
        let n = self.intern(at, CostElem::NoCtx, kind);
        self.graph.bump(n);
        n
    }

    /// Records a node's heap effect in the dense per-node table.
    #[inline]
    fn set_effect(&mut self, n: NodeId, eff: HeapEffect) {
        let i = n.index();
        if self.effects.len() <= i {
            self.effects.resize(i + 1, None);
        }
        self.effects[i] = Some(eff);
    }

    fn edge_from_shadow(&mut self, src: Option<NodeId>, to: NodeId) {
        if let Some(m) = src {
            self.graph.add_edge(m, to);
        }
    }

    fn store_common(
        &mut self,
        n: NodeId,
        object: lowutil_ir::ObjectId,
        field: FieldKey,
        value: Value,
    ) {
        if let Some(tag) = self.shadow_heap.tag(object) {
            self.set_effect(n, HeapEffect::Store { site: tag, field });
            if let Some(&alloc) = self.alloc_nodes.get(&tag) {
                self.ref_edges.insert((n, alloc));
            }
            if let Some(target) = value.as_ref_id() {
                if let Some(tag2) = self.shadow_heap.tag(target) {
                    self.points_to.entry((tag, field)).or_default().insert(tag2);
                }
            }
        }
    }

    /// Consumes the builder, producing the analysis-ready [`CostGraph`].
    pub fn finish(self) -> CostGraph {
        CostGraph::assemble(
            self.graph,
            self.ref_edges,
            self.effects,
            self.alloc_nodes,
            self.points_to,
            self.conflicts,
            self.instr_instances,
            self.shadow_heap.approx_bytes(),
        )
    }

    /// Consumes one instruction event (the Figure 4 semantics).
    pub fn event(&mut self, event: &Event) {
        if let Event::Phase { begin, .. } = event {
            if self.config.phase_limited {
                self.armed = *begin;
            }
            return;
        }
        if !self.armed {
            // Keep call/return plumbing from leaking stale data across an
            // armed/disarmed boundary.
            match event {
                Event::Call { .. } => self.st_mut().pending_args.clear(),
                Event::Return { .. } => self.st_mut().ret_stash = None,
                _ => {}
            }
            return;
        }
        // A call instruction surfaces as two events (Call before the
        // callee, CallComplete after); count it once.
        if !matches!(event, Event::CallComplete { .. }) {
            self.instr_instances += 1;
        }
        match event {
            Event::Compute {
                at,
                dst,
                uses,
                value: _,
            } => {
                let n = self.ctx_node(*at, NodeKind::Plain);
                for u in uses.iter().flatten() {
                    self.edge_from_shadow(self.shadow(*u), n);
                }
                self.set_shadow(*dst, Some(n));
            }
            Event::Predicate { at, uses, .. } => {
                let n = self.consumer_node(*at, NodeKind::Predicate);
                for u in uses {
                    self.edge_from_shadow(self.shadow(*u), n);
                }
            }
            Event::Alloc {
                at,
                dst,
                object,
                site,
                len_use,
            } => {
                let n = self.ctx_node(*at, NodeKind::Alloc);
                if let Some(l) = len_use {
                    self.edge_from_shadow(self.shadow(*l), n);
                }
                self.set_shadow(*dst, Some(n));
                let slot = slot_of(self.st().contexts.current(), self.config.slots);
                let tag = TaggedSite { site: *site, slot };
                self.shadow_heap.on_alloc(*object, 0, Some(tag));
                self.alloc_nodes.insert(tag, n);
                self.set_effect(n, HeapEffect::Alloc { site: tag });
            }
            Event::LoadField {
                at,
                dst,
                base,
                object,
                field,
                offset,
                ..
            } => {
                let n = self.ctx_node(*at, NodeKind::HeapLoad);
                let src = self.shadow_heap.get(*object, *offset as usize);
                self.edge_from_shadow(src, n);
                if self.config.traditional_uses {
                    self.edge_from_shadow(self.shadow(*base), n);
                }
                self.set_shadow(*dst, Some(n));
                if let Some(tag) = self.shadow_heap.tag(*object) {
                    self.set_effect(
                        n,
                        HeapEffect::Load {
                            site: tag,
                            field: FieldKey::Field(*field),
                        },
                    );
                }
            }
            Event::StoreField {
                at,
                base,
                object,
                field,
                offset,
                src,
                value,
                ..
            } => {
                let n = self.ctx_node(*at, NodeKind::HeapStore);
                self.edge_from_shadow(self.shadow(*src), n);
                if self.config.traditional_uses {
                    self.edge_from_shadow(self.shadow(*base), n);
                }
                self.shadow_heap.set(*object, *offset as usize, Some(n));
                self.store_common(n, *object, FieldKey::Field(*field), *value);
            }
            Event::LoadStatic { at, dst, field, .. } => {
                let n = self.ctx_node(*at, NodeKind::HeapLoad);
                let src = self.shadow_statics.get(field.index()).copied().flatten();
                self.edge_from_shadow(src, n);
                self.set_shadow(*dst, Some(n));
                self.set_effect(n, HeapEffect::LoadStatic(*field));
            }
            Event::StoreStatic { at, field, src, .. } => {
                let n = self.ctx_node(*at, NodeKind::HeapStore);
                self.edge_from_shadow(self.shadow(*src), n);
                if self.shadow_statics.len() <= field.index() {
                    self.shadow_statics.resize(field.index() + 1, None);
                }
                self.shadow_statics[field.index()] = Some(n);
                self.set_effect(n, HeapEffect::StoreStatic(*field));
            }
            Event::ArrayLoad {
                at,
                dst,
                base,
                object,
                idx,
                index,
                ..
            } => {
                let n = self.ctx_node(*at, NodeKind::HeapLoad);
                self.edge_from_shadow(self.shadow(*idx), n);
                if self.config.traditional_uses {
                    self.edge_from_shadow(self.shadow(*base), n);
                }
                let src = self.shadow_heap.get(*object, *index as usize);
                self.edge_from_shadow(src, n);
                self.set_shadow(*dst, Some(n));
                if let Some(tag) = self.shadow_heap.tag(*object) {
                    self.set_effect(
                        n,
                        HeapEffect::Load {
                            site: tag,
                            field: FieldKey::Element,
                        },
                    );
                }
            }
            Event::ArrayStore {
                at,
                base,
                object,
                idx,
                index,
                src,
                value,
                ..
            } => {
                let n = self.ctx_node(*at, NodeKind::HeapStore);
                self.edge_from_shadow(self.shadow(*idx), n);
                if self.config.traditional_uses {
                    self.edge_from_shadow(self.shadow(*base), n);
                }
                self.edge_from_shadow(self.shadow(*src), n);
                self.shadow_heap.set(*object, *index as usize, Some(n));
                self.store_common(n, *object, FieldKey::Element, *value);
            }
            Event::ArrayLen {
                at,
                dst,
                base,
                object,
                ..
            } => {
                let n = self.ctx_node(*at, NodeKind::HeapLoad);
                if self.config.traditional_uses {
                    self.edge_from_shadow(self.shadow(*base), n);
                }
                // The length was produced by the allocation.
                if let Some(tag) = self.shadow_heap.tag(*object) {
                    if let Some(&alloc) = self.alloc_nodes.get(&tag) {
                        self.graph.add_edge(alloc, n);
                    }
                    self.set_effect(
                        n,
                        HeapEffect::Load {
                            site: tag,
                            field: FieldKey::Length,
                        },
                    );
                }
                self.set_shadow(*dst, Some(n));
            }
            Event::Call { args, .. } => {
                let syms: Vec<Option<NodeId>> = args.iter().map(|a| self.shadow(*a)).collect();
                let st = self.st_mut();
                st.pending_args.clear();
                st.pending_args.extend(syms);
            }
            Event::Return { src, .. } => {
                self.st_mut().ret_stash = src.and_then(|s| self.shadow(s));
            }
            Event::CallComplete { dst, .. } => {
                let stash = self.st_mut().ret_stash.take();
                if let Some(d) = dst {
                    self.set_shadow(*d, stash);
                }
            }
            Event::Spawn {
                at,
                dst,
                thread,
                args,
                ..
            } => {
                // The handle is a fresh value produced here; the actuals
                // flow to the child thread's formals (rule METHOD ENTRY,
                // across threads), not into the handle.
                let n = self.ctx_node(*at, NodeKind::Plain);
                let syms: Vec<Option<NodeId>> = args.iter().map(|a| self.shadow(*a)).collect();
                self.spawn_args.insert(thread.0, syms);
                self.set_shadow(*dst, Some(n));
            }
            Event::Join {
                at, dst, thread, ..
            } => {
                // The joined value depends on the node that produced the
                // child thread's return value (recorded at its root
                // frame pop — join blocks until then).
                let n = self.ctx_node(*at, NodeKind::Plain);
                let ret = self.thread_rets.get(&thread.0).copied().flatten();
                self.edge_from_shadow(ret, n);
                if let Some(d) = dst {
                    self.set_shadow(*d, Some(n));
                }
            }
            Event::Native { at, args, dst, .. } => {
                let n = self.consumer_node(*at, NodeKind::Native);
                for a in args {
                    self.edge_from_shadow(self.shadow(*a), n);
                }
                if let Some(d) = dst {
                    self.set_shadow(*d, Some(n));
                }
            }
            Event::Jump { .. } => {}
            Event::Phase { .. } => unreachable!("handled above"),
        }
    }

    /// Consumes a frame push (rule METHOD ENTRY).
    pub fn frame_push(&mut self, info: &FrameInfo) {
        let receiver_site = info
            .receiver
            .and_then(|o| self.shadow_heap.tag(o))
            .map(|t| t.site);
        let st = self.st_mut();
        st.contexts.push(receiver_site);
        st.shadow_stack.push(info.num_locals as usize);
        // Formals receive the tracking data of the actuals (rule METHOD
        // ENTRY); main's entry frame has no actuals, and a spawned
        // thread's root frame receives the `Spawn`'s stashed actuals.
        for i in 0..info.num_args as usize {
            let data = st.pending_args.get(i).copied().flatten();
            st.shadow_stack.top_mut().set(i, data);
        }
        st.pending_args.clear();
    }

    /// Consumes a frame pop. Popping a thread's root frame records the
    /// return-value node for a later `Join`.
    pub fn frame_pop(&mut self) {
        let st = self.st_mut();
        st.shadow_stack.pop();
        st.contexts.pop();
        if st.shadow_stack.depth() == 0 {
            let ret = st.ret_stash.take();
            self.thread_rets.insert(self.cur as u32, ret);
        }
    }
}

impl EventSink for GraphBuilder {
    fn event(&mut self, event: &Event) {
        GraphBuilder::event(self, event);
    }

    fn frame_push(&mut self, info: &FrameInfo) {
        GraphBuilder::frame_push(self, info);
    }

    fn frame_pop(&mut self) {
        GraphBuilder::frame_pop(self);
    }

    fn thread(&mut self, tid: ThreadId) {
        GraphBuilder::thread(self, tid);
    }
}

/// Builds `G_cost` online while the VM runs: the [`Tracer`]-facing
/// adapter over [`GraphBuilder`]. See the module docs.
#[derive(Debug)]
pub struct CostProfiler {
    builder: GraphBuilder,
}

impl CostProfiler {
    /// Creates a profiler; see [`GraphBuilder::new`].
    pub fn new(program: &lowutil_ir::Program, config: CostGraphConfig) -> Self {
        CostProfiler {
            builder: GraphBuilder::new(program, config),
        }
    }

    /// Consumes the profiler, producing the analysis-ready [`CostGraph`].
    pub fn finish(self) -> CostGraph {
        self.builder.finish()
    }
}

impl Tracer for CostProfiler {
    fn instr(&mut self, event: &Event) {
        self.builder.event(event);
    }

    fn frame_push(&mut self, info: &FrameInfo) {
        self.builder.frame_push(info);
    }

    fn frame_pop(&mut self) {
        self.builder.frame_pop();
    }

    fn thread(&mut self, tid: ThreadId) {
        self.builder.thread(tid);
    }
}

/// The finished `G_cost`: the abstract thin dependence graph plus the
/// heap-effect side tables every client analysis consumes.
#[derive(Debug)]
pub struct CostGraph {
    graph: DepGraph<CostElem>,
    ref_edges: FxHashSet<(NodeId, NodeId)>,
    /// Heap effect per node, indexed densely by [`NodeId`].
    effects: Vec<Option<HeapEffect>>,
    alloc_nodes: FxHashMap<TaggedSite, NodeId>,
    points_to: FxHashMap<(TaggedSite, FieldKey), FxHashSet<TaggedSite>>,
    field_writes: FxHashMap<(TaggedSite, FieldKey), Vec<NodeId>>,
    field_reads: FxHashMap<(TaggedSite, FieldKey), Vec<NodeId>>,
    conflicts: ConflictStats,
    instr_instances: u64,
    shadow_heap_bytes: usize,
}

impl CostGraph {
    /// Assembles the finished artifact from builder state, deriving the
    /// field read/write indexes from the effects table. Used by both the
    /// sequential [`GraphBuilder::finish`] and the shard merge, so every
    /// construction path produces structurally identical results.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn assemble(
        graph: DepGraph<CostElem>,
        ref_edges: FxHashSet<(NodeId, NodeId)>,
        effects: Vec<Option<HeapEffect>>,
        alloc_nodes: FxHashMap<TaggedSite, NodeId>,
        points_to: FxHashMap<(TaggedSite, FieldKey), FxHashSet<TaggedSite>>,
        conflicts: ConflictStats,
        instr_instances: u64,
        shadow_heap_bytes: usize,
    ) -> CostGraph {
        let mut field_writes: FxHashMap<(TaggedSite, FieldKey), Vec<NodeId>> = FxHashMap::default();
        let mut field_reads: FxHashMap<(TaggedSite, FieldKey), Vec<NodeId>> = FxHashMap::default();
        for (i, eff) in effects.iter().enumerate() {
            let n = NodeId(i as u32);
            match *eff {
                Some(HeapEffect::Store { site, field }) => {
                    field_writes.entry((site, field)).or_default().push(n)
                }
                Some(HeapEffect::Load { site, field }) => {
                    field_reads.entry((site, field)).or_default().push(n)
                }
                _ => {}
            }
        }
        for v in field_writes.values_mut().chain(field_reads.values_mut()) {
            v.sort_unstable();
            v.dedup();
        }
        CostGraph {
            graph,
            ref_edges,
            effects,
            alloc_nodes,
            points_to,
            field_writes,
            field_reads,
            conflicts,
            instr_instances,
            shadow_heap_bytes,
        }
    }

    /// Reassembles a cost graph from its serialized parts (see
    /// [`crate::export`]); field read/write indexes and the allocation-node
    /// table are rebuilt from the effects. The std-hashed parameter types
    /// keep the deserialization interface independent of the profiler's
    /// internal hashers.
    pub fn from_parts(
        graph: DepGraph<CostElem>,
        ref_edges: HashSet<(NodeId, NodeId)>,
        effects: HashMap<NodeId, HeapEffect>,
        points_to: HashMap<(TaggedSite, FieldKey), HashSet<TaggedSite>>,
        instr_instances: u64,
        shadow_heap_bytes: usize,
    ) -> Self {
        let mut field_writes: FxHashMap<(TaggedSite, FieldKey), Vec<NodeId>> = FxHashMap::default();
        let mut field_reads: FxHashMap<(TaggedSite, FieldKey), Vec<NodeId>> = FxHashMap::default();
        let mut alloc_nodes: FxHashMap<TaggedSite, NodeId> = FxHashMap::default();
        let mut effect_table: Vec<Option<HeapEffect>> = vec![None; graph.num_nodes()];
        for (&n, eff) in &effects {
            if effect_table.len() <= n.index() {
                effect_table.resize(n.index() + 1, None);
            }
            effect_table[n.index()] = Some(*eff);
            match *eff {
                HeapEffect::Store { site, field } => {
                    field_writes.entry((site, field)).or_default().push(n)
                }
                HeapEffect::Load { site, field } => {
                    field_reads.entry((site, field)).or_default().push(n)
                }
                HeapEffect::Alloc { site } => {
                    alloc_nodes.insert(site, n);
                }
                _ => {}
            }
        }
        for v in field_writes.values_mut().chain(field_reads.values_mut()) {
            v.sort_unstable();
            v.dedup();
        }
        CostGraph {
            graph,
            ref_edges: ref_edges.into_iter().collect(),
            effects: effect_table,
            alloc_nodes,
            points_to: points_to
                .into_iter()
                .map(|(k, v)| (k, v.into_iter().collect()))
                .collect(),
            field_writes,
            field_reads,
            conflicts: ConflictStats::new(),
            instr_instances,
            shadow_heap_bytes,
        }
    }

    /// The underlying dependence graph.
    pub fn graph(&self) -> &DepGraph<CostElem> {
        &self.graph
    }

    /// Reference edges: store node → allocation node of the stored-into
    /// object.
    pub fn ref_edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.ref_edges.iter().copied()
    }

    /// The heap effect of a node, if it touches the heap.
    pub fn effect(&self, node: NodeId) -> Option<&HeapEffect> {
        self.effects.get(node.index()).and_then(Option::as_ref)
    }

    /// All context-annotated allocation sites observed, sorted.
    pub fn objects(&self) -> Vec<TaggedSite> {
        let mut v: Vec<TaggedSite> = self.alloc_nodes.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// The allocation node of a tagged site.
    pub fn alloc_node(&self, site: TaggedSite) -> Option<NodeId> {
        self.alloc_nodes.get(&site).copied()
    }

    /// Store nodes that write `site.field`.
    pub fn writes_of(&self, site: TaggedSite, field: FieldKey) -> &[NodeId] {
        self.field_writes
            .get(&(site, field))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Load nodes that read `site.field`.
    pub fn reads_of(&self, site: TaggedSite, field: FieldKey) -> &[NodeId] {
        self.field_reads
            .get(&(site, field))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Members of `site` that were ever written or read.
    pub fn fields_of(&self, site: TaggedSite) -> Vec<FieldKey> {
        let mut v: Vec<FieldKey> = self
            .field_writes
            .keys()
            .chain(self.field_reads.keys())
            .filter(|(s, _)| *s == site)
            .map(|(_, f)| *f)
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Objects that `site.field` was observed pointing to.
    pub fn points_to(&self, site: TaggedSite, field: FieldKey) -> Vec<TaggedSite> {
        let mut v: Vec<TaggedSite> = self
            .points_to
            .get(&(site, field))
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        v.sort_unstable();
        v
    }

    /// The raw points-to relation, for cross-session aggregation
    /// ([`crate::shard::Aggregate`]) — the public per-key accessor above
    /// cannot enumerate the key set.
    pub(crate) fn points_to_raw(
        &self,
    ) -> &FxHashMap<(TaggedSite, FieldKey), FxHashSet<TaggedSite>> {
        &self.points_to
    }

    /// Context-conflict statistics (empty unless tracking was enabled).
    pub fn conflicts(&self) -> &ConflictStats {
        &self.conflicts
    }

    /// Total instruction instances profiled (the paper's column `I`
    /// restricted to the armed window).
    pub fn instr_instances(&self) -> u64 {
        self.instr_instances
    }

    /// Approximate dependence-graph memory in bytes (column `M`).
    ///
    /// Computed from graph *content* (node/edge/effect counts), never
    /// from allocation capacities, so the number is identical however the
    /// graph was built — live, replayed, or merged from shards.
    pub fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        let effect_count = self.effects.iter().flatten().count();
        self.graph.approx_bytes()
            + self.ref_edges.len() * (size_of::<(NodeId, NodeId)>() + 16)
            + effect_count * size_of::<Option<HeapEffect>>()
    }

    /// Approximate shadow-heap memory at the end of the run (reported
    /// separately, as in the paper).
    pub fn shadow_heap_bytes(&self) -> usize {
        self.shadow_heap_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lowutil_ir::parse_program;
    use lowutil_vm::Vm;

    fn profile(src: &str) -> CostGraph {
        let p = parse_program(src).expect("parse");
        let mut prof = CostProfiler::new(&p, CostGraphConfig::default());
        Vm::new(&p).run(&mut prof).expect("run");
        prof.finish()
    }

    #[test]
    fn straight_line_graph_has_expected_shape() {
        // Figure 1's program: a=0; c=f(a); d=c*3; b=c+d with f(e)=e>>2.
        let g = profile(
            r#"
method main/0 {
  a = 0
  c = call f(a)
  three = 3
  d = c * three
  b = c + d
  return
}
method f/1 {
  two = 2
  r = p0 >> two
  return r
}
"#,
        );
        // Nodes: a=0, c gets f's r (via return), three, d, b, two, r.
        // All execute once under the empty context.
        assert!(g.graph().num_nodes() >= 6);
        for (_, n) in g.graph().iter() {
            assert_eq!(n.freq, 1);
        }
    }

    #[test]
    fn loop_nodes_accumulate_frequency_not_nodes() {
        let g = profile(
            r#"
method main/0 {
  i = 0
  one = 1
  lim = 100
loop:
  if i >= lim goto done
  i = i + one
  goto loop
done:
  return
}
"#,
        );
        let nodes = g.graph().num_nodes();
        assert!(nodes <= 6, "abstract graph stays bounded, got {nodes}");
        // The increment node ran 100 times.
        let max_freq = g.graph().iter().map(|(_, n)| n.freq).max().unwrap();
        assert!(max_freq >= 100);
    }

    #[test]
    fn heap_flow_connects_store_to_load() {
        let g = profile(
            r#"
native print/1
class Box { v }
method main/0 {
  b = new Box
  x = 41
  one = 1
  y = x + one
  b.v = y
  z = b.v
  native print(z)
  return
}
"#,
        );
        let objects = g.objects();
        assert_eq!(objects.len(), 1);
        let tag = objects[0];
        // One write and one read of Box.v.
        let fields = g.fields_of(tag);
        assert_eq!(fields.len(), 1);
        let f = fields[0];
        assert_eq!(g.writes_of(tag, f).len(), 1);
        assert_eq!(g.reads_of(tag, f).len(), 1);
        let store = g.writes_of(tag, f)[0];
        let load = g.reads_of(tag, f)[0];
        // Def-use edge store → load exists.
        assert!(g.graph().succs(store).contains(&load));
        // Reference edge store → alloc exists.
        let alloc = g.alloc_node(tag).unwrap();
        assert!(g.ref_edges().any(|(s, a)| s == store && a == alloc));
        // Store node is boxed, load circled, alloc underlined.
        assert_eq!(g.graph().node(store).kind, NodeKind::HeapStore);
        assert_eq!(g.graph().node(load).kind, NodeKind::HeapLoad);
        assert_eq!(g.graph().node(alloc).kind, NodeKind::Alloc);
    }

    #[test]
    fn predicates_and_natives_are_context_free_consumers() {
        let g = profile(
            r#"
native print/1
method main/0 {
  x = 1
  y = 2
  if x < y goto l
l:
  native print(x)
  return
}
"#,
        );
        let consumers: Vec<_> = g
            .graph()
            .iter()
            .filter(|(_, n)| n.kind.is_consumer())
            .collect();
        assert_eq!(consumers.len(), 2);
        for (_, n) in consumers {
            assert_eq!(n.elem, CostElem::NoCtx);
        }
    }

    #[test]
    fn contexts_split_nodes_by_receiver_chain() {
        // Two A objects from different sites call the same method `get`;
        // with enough slots, the body nodes split into two context slots.
        let g = profile(
            r#"
class A { f }
native print/1
method main/0 {
  x = 1
  a1 = new A
  a1.f = x
  a2 = new A
  a2.f = x
  r1 = vcall get(a1)
  r2 = vcall get(a2)
  native print(r1)
  native print(r2)
  return
}
method A.get/0 {
  r = this.f
  return r
}
"#,
        );
        // The load `r = this.f` should appear under two distinct contexts.
        let load_nodes: Vec<_> = g
            .graph()
            .iter()
            .filter(|(_, n)| n.kind == NodeKind::HeapLoad)
            .collect();
        assert_eq!(load_nodes.len(), 2, "this.f split by receiver context");
    }

    #[test]
    fn points_to_tracks_reference_stores() {
        let g = profile(
            r#"
class Outer { inner }
class Inner { v }
method main/0 {
  o = new Outer
  i = new Inner
  o.inner = i
  return
}
"#,
        );
        let objects = g.objects();
        assert_eq!(objects.len(), 2);
        // Outer's field points to Inner's tag.
        let with_ptr: Vec<_> = objects
            .iter()
            .filter(|&&t| {
                g.fields_of(t)
                    .iter()
                    .any(|&f| !g.points_to(t, f).is_empty())
            })
            .collect();
        assert_eq!(with_ptr.len(), 1);
    }

    #[test]
    fn phase_limited_profiling_skips_outside_window() {
        let src = r#"
native phase_begin/0
native phase_end/0
native print/1
method main/0 {
  a = 1
  b = 2
  native phase_begin()
  c = 3
  native phase_end()
  d = 4
  native print(d)
  return
}
"#;
        let p = parse_program(src).unwrap();
        let mut prof = CostProfiler::new(
            &p,
            CostGraphConfig {
                phase_limited: true,
                ..CostGraphConfig::default()
            },
        );
        Vm::new(&p).run(&mut prof).unwrap();
        let g = prof.finish();
        // Only `c = 3` was profiled.
        assert_eq!(g.instr_instances(), 1);
        assert_eq!(g.graph().num_nodes(), 1);
    }

    #[test]
    fn traditional_uses_pull_pointer_costs_into_values() {
        // Under thin slicing the value loaded from b.v depends only on the
        // stored value; under traditional slicing it also depends on the
        // expensive computation that produced the *pointer* b.
        let src = r#"
native print/1
class Box { v }
class Registry { slot }
method main/0 {
  # expensive pointer computation: pick a box via a loop
  reg = new Registry
  b = new Box
  reg.slot = b
  i = 0
  one = 1
  lim = 200
loop:
  if i >= lim goto done
  b = reg.slot
  i = i + one
  goto loop
done:
  x = 7
  b.v = x
  y = b.v
  native print(y)
  return
}
"#;
        let p = parse_program(src).unwrap();
        let run = |traditional: bool| {
            let mut prof = CostProfiler::new(
                &p,
                CostGraphConfig {
                    traditional_uses: traditional,
                    ..CostGraphConfig::default()
                },
            );
            Vm::new(&p).run(&mut prof).unwrap();
            prof.finish()
        };
        let thin = run(false);
        let trad = run(true);
        // Same nodes, strictly more edges under traditional slicing.
        assert_eq!(thin.graph().num_nodes(), trad.graph().num_nodes());
        assert!(trad.graph().num_edges() > thin.graph().num_edges());

        // Backward slice size from the load of b.v: thin excludes the
        // pointer-producing loop, traditional includes it.
        let load_of = |g: &CostGraph| {
            g.objects()
                .into_iter()
                .flat_map(|o| {
                    g.fields_of(o)
                        .into_iter()
                        .flat_map(move |f| g.reads_of(o, f).to_vec())
                })
                .max_by_key(|&n| crate::slicer::backward_slice(g.graph(), n).len())
                .unwrap()
        };
        let thin_n = crate::slicer::backward_slice(thin.graph(), load_of(&thin)).len();
        let trad_n = crate::slicer::backward_slice(trad.graph(), load_of(&trad)).len();
        assert!(
            trad_n > thin_n,
            "traditional slice ({trad_n}) must exceed thin ({thin_n})"
        );
    }

    #[test]
    fn control_edges_charge_loop_guards_into_value_costs() {
        // A value computed inside a loop: ignoring control, its backward
        // slice excludes the loop-condition work; counting control, the
        // guard's instances flow in (the paper's §3.2 concern that costs
        // then include "many values that are irrelevant").
        let src = r#"
class Box { v }
method main/0 {
  b = new Box
  acc = 0
  i = 0
  one = 1
  lim = 50
loop:
  if i >= lim goto done
  acc = acc + one
  i = i + one
  goto loop
done:
  b.v = acc
  return
}
"#;
        let p = parse_program(src).unwrap();
        let run = |control: bool| {
            let mut prof = CostProfiler::new(
                &p,
                CostGraphConfig {
                    control_edges: control,
                    ..CostGraphConfig::default()
                },
            );
            Vm::new(&p).run(&mut prof).unwrap();
            prof.finish()
        };
        let plain = run(false);
        let ctl = run(true);
        let store_of = |g: &CostGraph| {
            g.objects()
                .into_iter()
                .flat_map(|o| {
                    g.fields_of(o)
                        .into_iter()
                        .flat_map(move |f| g.writes_of(o, f).to_vec())
                })
                .next()
                .expect("b.v written")
        };
        let cost = |g: &CostGraph| {
            let s = crate::slicer::backward_slice(g.graph(), store_of(g));
            crate::slicer::freq_sum(g.graph(), s)
        };
        let base = cost(&plain);
        let with_control = cost(&ctl);
        assert!(
            with_control > base,
            "control edges must inflate costs: {with_control} vs {base}"
        );
        // The inflation includes the guard's ~51 executions and the i
        // counter feeding it.
        assert!(with_control >= base + 50);
    }

    #[test]
    fn conflict_stats_are_recorded() {
        let g = profile(
            r#"
method main/0 {
  x = 1
  return
}
"#,
        );
        assert!(g.conflicts().num_instructions() >= 1);
        assert_eq!(g.conflicts().average_cr(), 0.0);
    }

    const FORK_JOIN_SRC: &str = r#"
native print/1
class Box { v }
method main/0 {
  b1 = new Box
  b2 = new Box
  t1 = spawn fill(b1)
  t2 = spawn fill(b2)
  r1 = join t1
  r2 = join t2
  s = r1 + r2
  native print(s)
  return
}
method fill/1 {
  i = 0
  one = 1
  lim = 5
loop:
  if i >= lim goto done
  p0.v = i
  i = i + one
  goto loop
done:
  r = p0.v
  return r
}
"#;

    #[test]
    fn thread_salted_contexts_keep_per_thread_nodes_apart() {
        let g = profile(FORK_JOIN_SRC);
        // The store `p0.v = i` (method fill, pc 4) runs on two threads
        // whose salted bases land in different slots iff the bases
        // differ mod 16 — which they do for T1/T2 (checked explicitly so
        // the assertion can't silently go vacuous).
        let s1 = slot_of(thread_base(ThreadId(1)), 16);
        let s2 = slot_of(thread_base(ThreadId(2)), 16);
        assert_ne!(s1, s2, "pick thread ids whose bases split mod 16");
        let store_at = InstrId::new(lowutil_ir::MethodId(1), 4);
        let stores: Vec<_> = g
            .graph()
            .iter()
            .filter(|(_, n)| n.instr == store_at)
            .collect();
        assert_eq!(stores.len(), 2, "one store node per thread context");
        for (_, n) in stores {
            assert_eq!(n.freq, 5);
        }
    }

    #[test]
    fn join_edges_carry_thread_results_into_the_consumer() {
        let g = profile(FORK_JOIN_SRC);
        // The printed sum must transitively depend on work done inside
        // `fill` (method 1) — the value crossed threads via Join.
        let native = g
            .graph()
            .iter()
            .find(|(_, n)| n.kind == NodeKind::Native)
            .map(|(id, _)| id)
            .unwrap();
        let slice = crate::slicer::backward_slice(g.graph(), native);
        let crossed = slice
            .iter()
            .any(|&n| g.graph().node(n).instr.method == lowutil_ir::MethodId(1));
        assert!(crossed, "print's slice must reach into fill's thread");
    }

    #[test]
    fn multithreaded_profiles_are_scheduler_seed_independent() {
        let p = parse_program(FORK_JOIN_SRC).expect("parse");
        let export = |sched_seed: u64| {
            let mut prof = CostProfiler::new(&p, CostGraphConfig::default());
            let rc = lowutil_vm::RunConfig {
                sched_seed,
                ..lowutil_vm::RunConfig::default()
            };
            lowutil_vm::Vm::with_config(&p, rc)
                .run(&mut prof)
                .expect("run");
            let mut buf = Vec::new();
            crate::export::write_cost_graph(&prof.finish(), &mut buf).unwrap();
            buf
        };
        let reference = export(0);
        for seed in [1, 2, 99, 0xFEED] {
            assert_eq!(
                String::from_utf8_lossy(&reference),
                String::from_utf8_lossy(&export(seed)),
                "sched seed {seed} changed the canonical export"
            );
        }
    }

    #[test]
    fn argument_tracking_crosses_calls() {
        // The value printed flows from `x = 5` through double() and back.
        let g = profile(
            r#"
native print/1
method main/0 {
  x = 5
  y = call double(x)
  native print(y)
  return
}
method double/1 {
  r = p0 + p0
  return r
}
"#,
        );
        // Find the const node (freq 1, Plain, no preds) and the native
        // node; the const must reach the native.
        let native = g
            .graph()
            .iter()
            .find(|(_, n)| n.kind == NodeKind::Native)
            .map(|(id, _)| id)
            .unwrap();
        let const_node = g
            .graph()
            .iter()
            .find(|(_, n)| {
                n.kind == NodeKind::Plain
                    && g.graph().preds(NodeId(0)).is_empty()
                    && n.instr.pc == 0
            })
            .map(|(id, _)| id)
            .unwrap();
        // BFS forward from const.
        let mut seen = vec![const_node];
        let mut stack = vec![const_node];
        while let Some(n) = stack.pop() {
            for &s in g.graph().succs(n) {
                if !seen.contains(&s) {
                    seen.push(s);
                    stack.push(s);
                }
            }
        }
        assert!(seen.contains(&native), "x=5 flows into print");
    }
}
