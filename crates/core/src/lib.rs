//! Abstract dynamic thin slicing and `G_cost` construction — the core
//! contribution of *"Finding Low-Utility Data Structures"* (PLDI 2010).
//!
//! # Overview
//!
//! The paper's pipeline, and this crate's layout:
//!
//! 1. **Dynamic thin slicing** restricts dynamic data dependences to value
//!    flows: the base pointer of a heap access is not a use (module
//!    [`slicer`] provides the traversals, [`concrete`] the unbounded
//!    per-instance baseline graph of traditional dynamic slicing).
//! 2. **Abstract dynamic thin slicing** maps the unbounded instruction
//!    instances into a client-chosen bounded domain `D`, so the dependence
//!    graph has at most `|I| × |D|` nodes ([`graph`], [`domain`]).
//! 3. **`G_cost`** instantiates the framework with encoded object-sensitive
//!    calling contexts ([`context`]), heap effects, reference edges, and
//!    consumer nodes ([`gcost`]); client analyses (cost-benefit, dead
//!    values, …) live in the `lowutil-analyses` crate. For the repeated
//!    slice queries of the analysis phase, [`csr`] snapshots a finished
//!    graph into a flat CSR form with bitset traversal kernels.
//!
//! # Example: profile a program and inspect `G_cost`
//!
//! ```
//! use lowutil_ir::parse_program;
//! use lowutil_vm::Vm;
//! use lowutil_core::{CostProfiler, CostGraphConfig, GraphStats};
//!
//! let program = parse_program(r#"
//! native print/1
//! class Box { v }
//! method main/0 {
//!   b = new Box
//!   x = 42
//!   b.v = x
//!   y = b.v
//!   native print(y)
//!   return
//! }
//! "#)?;
//!
//! let mut profiler = CostProfiler::new(&program, CostGraphConfig::default());
//! Vm::new(&program).run(&mut profiler)?;
//! let gcost = profiler.finish();
//!
//! let stats = GraphStats::of(&gcost);
//! assert!(stats.nodes > 0 && stats.edges > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

// `deny` rather than `forbid`: the snapshot store's byte-slice casts
// ([`store`]) carve out one audited `#[allow(unsafe_code)]` module, the
// same discipline as `lowutil-par`'s ring buffer.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod concrete;
pub mod context;
pub mod csr;
pub mod dense;
pub mod domain;
pub mod export;
pub mod fx;
pub mod gcost;
pub mod graph;
pub mod incr;
pub mod shard;
pub mod slicer;
pub mod stats;
pub mod store;

pub use concrete::{ConcreteGraph, ConcreteProfiler, InstanceId, SlicingMode};
pub use context::{
    extend_context, slot_of, thread_base, ConflictStats, ContextStack, EMPTY_CONTEXT,
};
pub use csr::{Bitset, CsrDelta, CsrGraph, TraversalScratch};
pub use dense::{DenseDomain, DenseInterner, InstrIndexer};
pub use domain::{AbstractDomain, AbstractProfiler};
pub use export::{canonical_order, read_cost_graph, write_cost_graph, write_dot};
pub use fx::{FxHashMap, FxHashSet};
pub use gcost::{
    CostElem, CostGraph, CostGraphConfig, CostProfiler, FieldKey, GraphBuilder, HeapEffect,
    TaggedSite,
};
pub use graph::{DepGraph, Node, NodeId, NodeKind};
pub use incr::{IncrDirty, IncrementalCsr};
pub use shard::{
    apply_object_delta, build_shard, merge_shards, replay_cost_graph, replay_segments, shard_sink,
    sharded_replay_sequential, AbsorbDelta, AbstractNode, Aggregate, ObjectInfo, ObjectTableScan,
    ShardContext, ShardGraph, ShardSink,
};
pub use stats::GraphStats;
pub use store::{
    content_hash, fnv1a64, read_snapshot, save_snapshot, verify_snapshot, write_snapshot,
    AlignedBuf, SectionCheck, Snapshot, StoreError, VerifyReport,
};
