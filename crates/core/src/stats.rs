//! Graph characteristics for the paper's Table 1.

use crate::gcost::CostGraph;

/// The per-benchmark measurements reported in Table 1 parts (a)/(b).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GraphStats {
    /// Number of abstract nodes (`#N`).
    pub nodes: usize,
    /// Number of def-use edges (`#E`).
    pub edges: usize,
    /// Number of reference edges.
    pub ref_edges: usize,
    /// Approximate graph memory in bytes (`M`, excluding the shadow heap).
    pub graph_bytes: usize,
    /// Approximate shadow-heap memory in bytes (reported separately, like
    /// the paper's flat 500 MB).
    pub shadow_heap_bytes: usize,
    /// Average context-conflict ratio (`CR`).
    pub avg_cr: f64,
    /// Total instruction instances profiled (`I`).
    pub instr_instances: u64,
    /// Distinct exact contexts observed (the size the unbounded context
    /// domain would need).
    pub distinct_contexts: usize,
}

impl GraphStats {
    /// Computes the Table 1 characteristics of a finished [`CostGraph`].
    pub fn of(graph: &CostGraph) -> Self {
        GraphStats {
            nodes: graph.graph().num_nodes(),
            edges: graph.graph().num_edges(),
            ref_edges: graph.ref_edges().count(),
            graph_bytes: graph.approx_bytes(),
            shadow_heap_bytes: graph.shadow_heap_bytes(),
            avg_cr: graph.conflicts().average_cr(),
            instr_instances: graph.instr_instances(),
            distinct_contexts: graph.conflicts().distinct_contexts(),
        }
    }

    /// Abstraction ratio `N / I`: how many instruction instances each
    /// abstract node stands for (smaller is better compression).
    pub fn abstraction_ratio(&self) -> f64 {
        if self.instr_instances == 0 {
            return 0.0;
        }
        self.nodes as f64 / self.instr_instances as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gcost::{CostGraphConfig, CostProfiler};
    use lowutil_ir::parse_program;
    use lowutil_vm::Vm;

    #[test]
    fn stats_capture_graph_shape() {
        let src = r#"
native print/1
method main/0 {
  i = 0
  one = 1
  lim = 1000
loop:
  if i >= lim goto done
  i = i + one
  goto loop
done:
  native print(i)
  return
}
"#;
        let p = parse_program(src).unwrap();
        let mut prof = CostProfiler::new(&p, CostGraphConfig::default());
        Vm::new(&p).run(&mut prof).unwrap();
        let g = prof.finish();
        let s = GraphStats::of(&g);
        assert!(s.nodes >= 5 && s.nodes < 20);
        assert!(s.edges >= 4);
        assert!(s.instr_instances > 3000);
        assert!(s.abstraction_ratio() < 0.01, "N ≪ I for hot loops");
        assert_eq!(s.avg_cr, 0.0);
        assert!(s.graph_bytes > 0);
    }
}
