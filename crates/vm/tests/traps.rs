//! Trap and edge-case coverage for the interpreter: every failure mode a
//! workload author can hit must surface as a precise `Trap`, never as a
//! wrong answer or a panic.

use lowutil_ir::{parse_program, ProgramBuilder, Value};
use lowutil_vm::{CountingTracer, NullTracer, RunConfig, TrapKind, Vm};

fn run_err(src: &str) -> lowutil_vm::Trap {
    let p = parse_program(src).expect("parse");
    Vm::new(&p).run(&mut NullTracer).expect_err("should trap")
}

#[test]
fn negative_array_length_traps() {
    let e = run_err("method main/0 {\n  n = -3\n  a = newarray n\n  return\n}\n");
    assert!(matches!(
        e.kind,
        TrapKind::IndexOutOfBounds { index: -3, .. }
    ));
}

#[test]
fn out_of_bounds_read_and_write_trap() {
    let e =
        run_err("method main/0 {\n  n = 2\n  a = newarray n\n  i = 5\n  x = a[i]\n  return\n}\n");
    assert!(matches!(
        e.kind,
        TrapKind::IndexOutOfBounds { index: 5, len: 2 }
    ));
    let e = run_err(
        "method main/0 {\n  n = 2\n  a = newarray n\n  i = -1\n  x = 7\n  a[i] = x\n  return\n}\n",
    );
    assert!(matches!(
        e.kind,
        TrapKind::IndexOutOfBounds { index: -1, .. }
    ));
}

#[test]
fn indexing_a_non_array_traps() {
    let e =
        run_err("class C { f }\nmethod main/0 {\n  o = new C\n  i = 0\n  x = o[i]\n  return\n}\n");
    assert!(matches!(e.kind, TrapKind::TypeError { .. }));
}

#[test]
fn field_access_on_array_traps() {
    let e = run_err(
        "class C { f }\nmethod main/0 {\n  n = 2\n  a = newarray n\n  x = a.f\n  return\n}\n",
    );
    assert!(matches!(e.kind, TrapKind::NoSuchField));
}

#[test]
fn field_access_on_wrong_class_traps() {
    let e = run_err(
        "class C { f }\nclass D { g }\nmethod main/0 {\n  o = new D\n  x = o.f\n  return\n}\n",
    );
    assert!(matches!(e.kind, TrapKind::NoSuchField));
}

#[test]
fn virtual_call_on_null_traps_as_null_dereference() {
    let e = run_err(
        "class C { }\nmethod C.m/0 {\n  return\n}\nmethod main/0 {\n  o = null\n  vcall m(o)\n  return\n}\n",
    );
    assert!(matches!(e.kind, TrapKind::NullDereference { .. }));
}

#[test]
fn virtual_call_with_no_target_traps() {
    let e = run_err(
        r#"
class C { }
class D { }
method D.m/0 {
  return
}
method main/0 {
  o = new C
  vcall m(o)
  return
}
"#,
    );
    assert!(matches!(e.kind, TrapKind::NoSuchMethod { .. }));
}

#[test]
fn virtual_arity_mismatch_traps() {
    let e = run_err(
        r#"
class C { }
method C.m/2 {
  return
}
method main/0 {
  o = new C
  vcall m(o)
  return
}
"#,
    );
    assert!(matches!(
        e.kind,
        TrapKind::ArityMismatch {
            expected: 3,
            found: 1
        }
    ));
}

#[test]
fn bitwise_ops_on_floats_trap() {
    let e = run_err("method main/0 {\n  a = 1.5\n  b = 2\n  c = a & b\n  return\n}\n");
    assert!(matches!(e.kind, TrapKind::TypeError { .. }));
}

#[test]
fn ordering_comparison_on_references_traps() {
    let e = run_err(
        "class C { }\nmethod main/0 {\n  a = new C\n  b = new C\nlp:\n  if a < b goto lp\n  return\n}\n",
    );
    assert!(matches!(e.kind, TrapKind::TypeError { .. }));
}

#[test]
fn equality_on_references_is_identity() {
    let src = r#"
native print/1
class C { }
method main/0 {
  a = new C
  b = new C
  c = a
  r1 = a == b
  r2 = a == c
  native print(r1)
  native print(r2)
  return
}
"#;
    let p = parse_program(src).unwrap();
    let out = Vm::new(&p).run(&mut NullTracer).unwrap();
    assert_eq!(out.output, vec![Value::Int(0), Value::Int(1)]);
}

#[test]
fn unknown_native_name_is_rejected_at_startup() {
    let mut pb = ProgramBuilder::new();
    let mystery = pb.native("launch_missiles", 0, false);
    let mut m = pb.method("main", 0);
    m.call_native_void(mystery, &[]);
    m.ret_void();
    let main = m.finish(&mut pb);
    let p = pb.finish(main).unwrap();
    let e = Vm::new(&p).run(&mut NullTracer).unwrap_err();
    assert!(matches!(e.kind, TrapKind::UnknownNative { .. }));
}

#[test]
fn void_return_into_local_traps() {
    let src = r#"
method void_fn/0 {
  return
}
method main/0 {
  x = call void_fn()
  return
}
"#;
    let e = run_err(src);
    assert!(matches!(e.kind, TrapKind::TypeError { .. }));
}

#[test]
fn run_method_accepts_arguments() {
    let src = r#"
method add3/3 {
  s = p0 + p1
  s = s + p2
  return s
}
method main/0 {
  return
}
"#;
    let p = parse_program(src).unwrap();
    let add3 = p.method_by_name("add3").unwrap();
    let out = Vm::new(&p)
        .run_method(
            add3,
            &[Value::Int(1), Value::Int(2), Value::Int(3)],
            &mut NullTracer,
        )
        .unwrap();
    assert_eq!(out.return_value, Some(Value::Int(6)));
}

#[test]
fn tuple_tracer_combinator_forwards_to_both() {
    let src = "method main/0 {\n  x = 1\n  y = 2\n  z = x + y\n  return\n}\n";
    let p = parse_program(src).unwrap();
    let mut pair = (CountingTracer::new(), CountingTracer::new());
    Vm::new(&p).run(&mut pair).unwrap();
    assert_eq!(pair.0.instrs, pair.1.instrs);
    assert!(pair.0.instrs >= 4);
    assert_eq!(pair.0.pushes, 1);
    assert_eq!(pair.1.pops, 1);
}

#[test]
fn nested_phase_markers_nest_counts() {
    let src = r#"
native phase_begin/0
native phase_end/0
method main/0 {
  native phase_begin()
  a = 1
  native phase_begin()
  b = 2
  native phase_end()
  c = 3
  native phase_end()
  d = 4
  return
}
"#;
    let p = parse_program(src).unwrap();
    let out = Vm::new(&p).run(&mut NullTracer).unwrap();
    // Window: everything after the outermost begin, up to and including
    // the outermost end (a, inner begin, b, inner end, c, outer end).
    assert_eq!(out.instructions_in_phase, 6);
}

#[test]
fn trap_display_is_informative() {
    let e = run_err("method main/0 {\n  a = 1\n  b = 0\n  c = a / b\n  return\n}\n");
    let msg = e.to_string();
    assert!(msg.contains("division by zero"));
    assert!(msg.contains("M0:2"), "{msg}");
}

#[test]
fn custom_seed_changes_rand_stream_deterministically() {
    let src = r#"
native print/1
native rand/1 -> value
method main/0 {
  bound = 1000000
  r = native rand(bound)
  native print(r)
  return
}
"#;
    let p = parse_program(src).unwrap();
    let a = Vm::with_config(
        &p,
        RunConfig {
            seed: 1,
            ..RunConfig::default()
        },
    )
    .run(&mut NullTracer)
    .unwrap();
    let b = Vm::with_config(
        &p,
        RunConfig {
            seed: 2,
            ..RunConfig::default()
        },
    )
    .run(&mut NullTracer)
    .unwrap();
    let a2 = Vm::with_config(
        &p,
        RunConfig {
            seed: 1,
            ..RunConfig::default()
        },
    )
    .run(&mut NullTracer)
    .unwrap();
    assert_eq!(a.output, a2.output);
    assert_ne!(a.output, b.output);
}
