//! The [`Tracer`] hook trait.

use crate::event::{Event, FrameInfo};
use lowutil_ir::ThreadId;

/// A profiling client attached to the interpreter.
///
/// The VM calls [`Tracer::instr`] once per executed instruction, and
/// [`Tracer::frame_push`] / [`Tracer::frame_pop`] around every call so the
/// tracer can keep a shadow stack aligned with the VM call stack. The entry
/// frame is also announced via `frame_push` (with `call_site == None`).
///
/// Ordering for a call `r = m(a, b)`:
///
/// 1. `instr(Event::Call { … })` — tracking data for `a`, `b` is available
///    in the caller frame;
/// 2. `frame_push(…)` — the callee frame exists; formals receive data;
/// 3. … callee body events …
/// 4. `instr(Event::Return { … })` — still in the callee frame;
/// 5. `frame_pop()`;
/// 6. `instr(Event::CallComplete { … })` — back in the caller frame.
pub trait Tracer {
    /// Called for every executed instruction.
    fn instr(&mut self, event: &Event);

    /// Called when a frame is pushed (including the entry frame).
    fn frame_push(&mut self, info: &FrameInfo) {
        let _ = info;
    }

    /// Called when a frame is popped.
    fn frame_pop(&mut self) {}

    /// Called when the scheduler switches guest threads: every subsequent
    /// hook belongs to `tid` until the next `thread` call. Never called for
    /// single-threaded programs (execution implicitly starts on
    /// [`ThreadId::MAIN`]), so tracers unaware of threads keep working
    /// unchanged on single-threaded workloads.
    fn thread(&mut self, tid: ThreadId) {
        let _ = tid;
    }
}

/// A tracer that ignores everything — the uninstrumented baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullTracer;

impl Tracer for NullTracer {
    fn instr(&mut self, _event: &Event) {}
}

/// Counts events without interpreting them; useful for tests and overhead
/// calibration.
#[derive(Debug, Clone, Copy, Default)]
pub struct CountingTracer {
    /// Number of instruction events seen.
    pub instrs: u64,
    /// Number of frame pushes seen.
    pub pushes: u64,
    /// Number of frame pops seen.
    pub pops: u64,
    /// Number of thread switches seen (0 for single-threaded programs).
    pub switches: u64,
}

impl CountingTracer {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Tracer for CountingTracer {
    fn instr(&mut self, _event: &Event) {
        self.instrs += 1;
    }

    fn frame_push(&mut self, _info: &FrameInfo) {
        self.pushes += 1;
    }

    fn frame_pop(&mut self) {
        self.pops += 1;
    }

    fn thread(&mut self, _tid: ThreadId) {
        self.switches += 1;
    }
}

/// Runs two tracers over the same execution: `(a, b)` forwards every hook
/// to `a` then `b`. Nest tuples for more, e.g. `((a, b), c)`.
impl<A: Tracer, B: Tracer> Tracer for (A, B) {
    fn instr(&mut self, event: &Event) {
        self.0.instr(event);
        self.1.instr(event);
    }

    fn frame_push(&mut self, info: &FrameInfo) {
        self.0.frame_push(info);
        self.1.frame_push(info);
    }

    fn frame_pop(&mut self) {
        self.0.frame_pop();
        self.1.frame_pop();
    }

    fn thread(&mut self, tid: ThreadId) {
        self.0.thread(tid);
        self.1.thread(tid);
    }
}

impl<T: Tracer + ?Sized> Tracer for &mut T {
    fn instr(&mut self, event: &Event) {
        (**self).instr(event);
    }

    fn frame_push(&mut self, info: &FrameInfo) {
        (**self).frame_push(info);
    }

    fn frame_pop(&mut self) {
        (**self).frame_pop();
    }

    fn thread(&mut self, tid: ThreadId) {
        (**self).thread(tid);
    }
}
