//! Native methods: the program-output boundary.
//!
//! The paper creates a *native node* for every call site that invokes a
//! native method; values flowing into natives are treated as consumed by
//! the JVM (program output — infinite benefit weight). Our registry binds
//! the native names a program declares to a small set of built-in
//! behaviours. Natives never touch the heap, so their dependence semantics
//! stay exactly "consume arguments, optionally produce one value".

use lowutil_ir::{NativeId, Program, Value};
use std::error::Error;
use std::fmt;

/// The built-in behaviour bound to a declared native method.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NativeKind {
    /// Consumes its arguments and records them in the run's output log.
    /// Declared name: `print` / `sink` / `emit` (any arity, no return).
    Sink,
    /// Consumes its arguments silently — output that is not captured
    /// (e.g. logging). Declared name: `blackhole`.
    Blackhole,
    /// Deterministic pseudo-random integer in `[0, arg)` (arity 1).
    /// Declared name: `rand`.
    Rand,
    /// Monotonic counter, one tick per call (arity 0). Declared name:
    /// `time`.
    Time,
    /// Reinterprets a float's bits as an integer (arity 1). Declared name:
    /// `float_to_bits`. (Models `Float.floatToIntBits` from the sunflow
    /// case study.)
    FloatToBits,
    /// Reinterprets an integer as float bits (arity 1). Declared name:
    /// `bits_to_float`.
    BitsToFloat,
    /// Integer square root (arity 1). Declared name: `isqrt`.
    Isqrt,
    /// Marks the beginning of a tracked phase (arity 0). Declared name:
    /// `phase_begin`.
    PhaseBegin,
    /// Marks the end of a tracked phase (arity 0). Declared name:
    /// `phase_end`.
    PhaseEnd,
}

impl NativeKind {
    /// Resolves a declared native name to its behaviour.
    pub fn from_name(name: &str) -> Option<NativeKind> {
        Some(match name {
            "print" | "sink" | "emit" => NativeKind::Sink,
            "blackhole" => NativeKind::Blackhole,
            "rand" => NativeKind::Rand,
            "time" => NativeKind::Time,
            "float_to_bits" => NativeKind::FloatToBits,
            "bits_to_float" => NativeKind::BitsToFloat,
            "isqrt" => NativeKind::Isqrt,
            "phase_begin" => NativeKind::PhaseBegin,
            "phase_end" => NativeKind::PhaseEnd,
            _ => return None,
        })
    }

    /// Whether this native produces a value.
    pub fn produces_value(self) -> bool {
        matches!(
            self,
            NativeKind::Rand
                | NativeKind::Time
                | NativeKind::FloatToBits
                | NativeKind::BitsToFloat
                | NativeKind::Isqrt
        )
    }
}

/// An unknown native name encountered while constructing a VM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownNativeError {
    /// The undeclarable name.
    pub name: String,
}

impl fmt::Display for UnknownNativeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "no built-in behaviour for native `{}`", self.name)
    }
}

impl Error for UnknownNativeError {}

/// Binds every native a program declares to a [`NativeKind`].
#[derive(Debug, Clone)]
pub struct NativeRegistry {
    kinds: Vec<NativeKind>,
}

impl NativeRegistry {
    /// Resolves all natives declared by `program`.
    ///
    /// # Errors
    /// Returns [`UnknownNativeError`] if a declared native name has no
    /// built-in behaviour.
    pub fn for_program(program: &Program) -> Result<Self, UnknownNativeError> {
        let kinds = program
            .natives()
            .iter()
            .map(|n| {
                NativeKind::from_name(n.name()).ok_or_else(|| UnknownNativeError {
                    name: n.name().to_string(),
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(NativeRegistry { kinds })
    }

    /// The behaviour bound to `id`.
    ///
    /// # Panics
    /// Panics if `id` was not declared by the program this registry was
    /// built for.
    pub fn kind(&self, id: NativeId) -> NativeKind {
        self.kinds[id.index()]
    }
}

/// Mutable state shared by native implementations (RNG, clock).
#[derive(Debug, Clone)]
pub struct NativeState {
    rng: u64,
    clock: i64,
}

impl NativeState {
    pub(crate) fn new(seed: u64) -> Self {
        NativeState {
            rng: seed.max(1),
            clock: 0,
        }
    }

    /// xorshift64* — deterministic, seedable, good enough for workloads.
    fn next_rand(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Executes a native; returns its produced value, if any.
    pub(crate) fn invoke(&mut self, kind: NativeKind, args: &[Value]) -> Option<Value> {
        match kind {
            NativeKind::Sink | NativeKind::Blackhole => None,
            NativeKind::Rand => {
                let bound = args.first().and_then(|v| v.as_int()).unwrap_or(i64::MAX);
                let bound = bound.max(1) as u64;
                Some(Value::Int((self.next_rand() % bound) as i64))
            }
            NativeKind::Time => {
                self.clock += 1;
                Some(Value::Int(self.clock))
            }
            NativeKind::FloatToBits => {
                let f = match args.first() {
                    Some(Value::Float(f)) => *f,
                    Some(Value::Int(i)) => *i as f64,
                    _ => 0.0,
                };
                Some(Value::Int(f.to_bits() as i64))
            }
            NativeKind::BitsToFloat => {
                let i = args.first().and_then(|v| v.as_int()).unwrap_or(0);
                Some(Value::Float(f64::from_bits(i as u64)))
            }
            NativeKind::Isqrt => {
                let i = args.first().and_then(|v| v.as_int()).unwrap_or(0).max(0);
                Some(Value::Int((i as f64).sqrt().floor() as i64))
            }
            NativeKind::PhaseBegin | NativeKind::PhaseEnd => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_resolve_to_kinds() {
        assert_eq!(NativeKind::from_name("print"), Some(NativeKind::Sink));
        assert_eq!(NativeKind::from_name("sink"), Some(NativeKind::Sink));
        assert_eq!(NativeKind::from_name("rand"), Some(NativeKind::Rand));
        assert_eq!(NativeKind::from_name("nope"), None);
    }

    #[test]
    fn rand_is_deterministic_and_bounded() {
        let mut a = NativeState::new(42);
        let mut b = NativeState::new(42);
        for _ in 0..100 {
            let va = a.invoke(NativeKind::Rand, &[Value::Int(10)]);
            let vb = b.invoke(NativeKind::Rand, &[Value::Int(10)]);
            assert_eq!(va, vb);
            let v = va.unwrap().as_int().unwrap();
            assert!((0..10).contains(&v));
        }
    }

    #[test]
    fn float_bits_round_trip() {
        let mut s = NativeState::new(1);
        let bits = s
            .invoke(NativeKind::FloatToBits, &[Value::Float(2.5)])
            .unwrap();
        let back = s.invoke(NativeKind::BitsToFloat, &[bits]).unwrap();
        assert_eq!(back, Value::Float(2.5));
    }

    #[test]
    fn time_ticks_monotonically() {
        let mut s = NativeState::new(1);
        let t1 = s.invoke(NativeKind::Time, &[]).unwrap().as_int().unwrap();
        let t2 = s.invoke(NativeKind::Time, &[]).unwrap().as_int().unwrap();
        assert!(t2 > t1);
    }

    #[test]
    fn isqrt_floors() {
        let mut s = NativeState::new(1);
        assert_eq!(
            s.invoke(NativeKind::Isqrt, &[Value::Int(17)]),
            Some(Value::Int(4))
        );
        assert_eq!(
            s.invoke(NativeKind::Isqrt, &[Value::Int(-5)]),
            Some(Value::Int(0))
        );
    }

    #[test]
    fn produces_value_matches_invoke() {
        let mut s = NativeState::new(1);
        for kind in [
            NativeKind::Sink,
            NativeKind::Blackhole,
            NativeKind::Rand,
            NativeKind::Time,
            NativeKind::FloatToBits,
            NativeKind::BitsToFloat,
            NativeKind::Isqrt,
            NativeKind::PhaseBegin,
            NativeKind::PhaseEnd,
        ] {
            let out = s.invoke(kind, &[Value::Int(5)]);
            assert_eq!(out.is_some(), kind.produces_value(), "{kind:?}");
        }
    }
}
