//! The VM heap: objects and arrays tagged with allocation sites.
//!
//! There is no garbage collector — like the paper's shadow-heap setup, the
//! analyses want stable object identities for the duration of a run, and
//! the workloads are sized to fit comfortably in memory. (The paper's
//! tracking data would survive GC because it lives at fixed shadow-heap
//! offsets; ours survives trivially because objects are never reclaimed.)

use lowutil_ir::{AllocSiteId, ClassId, ObjectId, Value};

/// One heap cell: a class instance or an array.
///
/// Arrays reuse the `slots` storage, with one slot per element.
#[derive(Debug, Clone)]
pub struct HeapObject {
    class: Option<ClassId>,
    site: AllocSiteId,
    slots: Vec<Value>,
}

impl HeapObject {
    /// The dynamic class, or `None` for arrays.
    pub fn class(&self) -> Option<ClassId> {
        self.class
    }

    /// The allocation site that created this object.
    pub fn site(&self) -> AllocSiteId {
        self.site
    }

    /// Returns `true` if this is an array.
    pub fn is_array(&self) -> bool {
        self.class.is_none()
    }

    /// Number of field slots / array elements.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Returns `true` if the object has no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Reads a slot.
    pub fn get(&self, slot: usize) -> Option<Value> {
        self.slots.get(slot).copied()
    }

    /// Writes a slot. Returns `false` if out of range.
    pub fn set(&mut self, slot: usize, value: Value) -> bool {
        match self.slots.get_mut(slot) {
            Some(s) => {
                *s = value;
                true
            }
            None => false,
        }
    }
}

/// The object store.
#[derive(Debug, Clone, Default)]
pub struct Heap {
    objects: Vec<HeapObject>,
}

impl Heap {
    /// Creates an empty heap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a class instance with `num_slots` null-initialized fields.
    pub fn alloc_object(
        &mut self,
        class: ClassId,
        num_slots: usize,
        site: AllocSiteId,
    ) -> ObjectId {
        let id = ObjectId(self.objects.len() as u32);
        self.objects.push(HeapObject {
            class: Some(class),
            site,
            slots: vec![Value::Null; num_slots],
        });
        id
    }

    /// Allocates an array of `len` null-initialized elements.
    pub fn alloc_array(&mut self, len: usize, site: AllocSiteId) -> ObjectId {
        let id = ObjectId(self.objects.len() as u32);
        self.objects.push(HeapObject {
            class: None,
            site,
            slots: vec![Value::Null; len],
        });
        id
    }

    /// Looks up an object.
    pub fn get(&self, id: ObjectId) -> Option<&HeapObject> {
        self.objects.get(id.index())
    }

    /// Looks up an object mutably.
    pub fn get_mut(&mut self, id: ObjectId) -> Option<&mut HeapObject> {
        self.objects.get_mut(id.index())
    }

    /// Total number of objects ever allocated.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Returns `true` if nothing has been allocated.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Iterates over all objects with their ids.
    pub fn iter(&self) -> impl Iterator<Item = (ObjectId, &HeapObject)> {
        self.objects
            .iter()
            .enumerate()
            .map(|(i, o)| (ObjectId(i as u32), o))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn objects_and_arrays_share_the_store() {
        let mut h = Heap::new();
        let o = h.alloc_object(ClassId(0), 2, AllocSiteId(0));
        let a = h.alloc_array(3, AllocSiteId(1));
        assert_eq!(h.len(), 2);
        assert!(!h.get(o).unwrap().is_array());
        assert!(h.get(a).unwrap().is_array());
        assert_eq!(h.get(o).unwrap().len(), 2);
        assert_eq!(h.get(a).unwrap().len(), 3);
        assert_eq!(h.get(o).unwrap().site(), AllocSiteId(0));
    }

    #[test]
    fn slots_initialize_to_null_and_are_writable() {
        let mut h = Heap::new();
        let o = h.alloc_object(ClassId(0), 1, AllocSiteId(0));
        assert_eq!(h.get(o).unwrap().get(0), Some(Value::Null));
        assert!(h.get_mut(o).unwrap().set(0, Value::Int(5)));
        assert_eq!(h.get(o).unwrap().get(0), Some(Value::Int(5)));
        assert!(!h.get_mut(o).unwrap().set(9, Value::Int(5)));
        assert_eq!(h.get(o).unwrap().get(9), None);
    }

    #[test]
    fn iter_visits_in_allocation_order() {
        let mut h = Heap::new();
        let a = h.alloc_array(0, AllocSiteId(0));
        let b = h.alloc_array(0, AllocSiteId(1));
        let ids: Vec<ObjectId> = h.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![a, b]);
        assert!(h.get(a).unwrap().is_empty());
    }
}
