//! The instrumentable interpreter substrate for `lowutil`.
//!
//! The PLDI'10 cost-benefit analyses were implemented inside the IBM J9
//! commercial JVM, which gave them a hook at every executed bytecode, a
//! shadow heap for per-field tracking data, and object headers carrying
//! allocation-site tags. None of that exists outside a managed runtime, so
//! this crate *is* the managed runtime: a deterministic three-address-code
//! interpreter over [`lowutil_ir`] programs that
//!
//! * emits a fine-grained [`Event`] to a [`Tracer`] for every executed
//!   instruction, carrying exactly the def/use information the paper's
//!   instrumentation rules (Figure 4) consume,
//! * tags every heap object with its allocation site,
//! * provides reusable [`ShadowHeap`]/[`ShadowStack`]/[`TrackingStack`]
//!   building blocks mirroring the paper's shadow-memory machinery, and
//! * supports *phase markers* so profiling can be limited to a steady-state
//!   portion of a run (the paper's 5–10× overhead reduction mode).
//!
//! # Example
//!
//! ```
//! use lowutil_ir::{ProgramBuilder, ConstValue};
//! use lowutil_vm::{Vm, NullTracer};
//!
//! let mut pb = ProgramBuilder::new();
//! let print = pb.native("print", 1, false);
//! let mut main = pb.method("main", 0);
//! let x = main.new_local("x");
//! main.constant(x, ConstValue::Int(7));
//! main.call_native_void(print, &[x]);
//! main.ret_void();
//! let main_id = main.finish(&mut pb);
//! let program = pb.finish(main_id)?;
//!
//! let outcome = Vm::new(&program).run(&mut NullTracer)?;
//! assert_eq!(outcome.output, vec![lowutil_ir::Value::Int(7)]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
mod event;
mod heap;
mod interp;
mod natives;
mod shadow;
mod sink;
pub mod trace;
mod tracer;

pub use batch::{BatchRecord, BatchSink, BatchTarget, EventBatch, DEFAULT_BATCH_LIMIT};
pub use event::{Event, FrameInfo};
pub use heap::{Heap, HeapObject};
pub use interp::{RunConfig, RunOutcome, Trap, TrapKind, Vm};
pub use natives::{NativeKind, NativeRegistry, UnknownNativeError};
pub use shadow::{ShadowFrame, ShadowHeap, ShadowStack, TrackingStack};
pub use sink::{CountingSink, EventSink, SinkTracer, TracerSink};
pub use trace::{
    SalvageStats, StreamingReader, TraceError, TraceReader, TraceStats, TraceWriter, Trailer,
    DEFAULT_STREAM_RECORD_LIMIT, TRACE_VERSION, TRACE_VERSION_V1, TRACE_VERSION_V2,
};
pub use tracer::{CountingTracer, NullTracer, Tracer};
