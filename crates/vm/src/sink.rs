//! The [`EventSink`] abstraction: consumers of an event *stream*.
//!
//! [`Tracer`](crate::Tracer) is the VM-facing hook; [`EventSink`] is the
//! pipeline-facing one. The two are intentionally isomorphic (instruction
//! events plus frame push/pop), and the adapters here convert in both
//! directions:
//!
//! * [`SinkTracer`] drives an `EventSink` from a live VM run — e.g. a
//!   [`TraceWriter`](crate::trace::TraceWriter) recording the execution,
//!   possibly tupled with a live profiler so one run both profiles and
//!   records;
//! * [`TracerSink`] drives a `Tracer` from a replayed stream — e.g.
//!   feeding a recorded trace back into any existing profiler without the
//!   profiler knowing it is not attached to a VM.
//!
//! Sinks observe the same ordering contract as tracers (documented on
//! [`Tracer`](crate::Tracer)): for a call, `Call` event → `frame_push` →
//! callee body → `Return` event → `frame_pop` → `CallComplete` event.

use crate::event::{Event, FrameInfo};
use crate::tracer::Tracer;
use lowutil_ir::ThreadId;

/// A consumer of an instruction-event stream, live or replayed.
///
/// Like [`Tracer`](crate::Tracer), the frame hooks default to no-ops so
/// stateless consumers only implement [`EventSink::event`].
pub trait EventSink {
    /// Called for every instruction event.
    fn event(&mut self, event: &Event);

    /// Called when a frame is pushed (including the entry frame).
    fn frame_push(&mut self, info: &FrameInfo) {
        let _ = info;
    }

    /// Called when a frame is popped.
    fn frame_pop(&mut self) {}

    /// Called when the stream switches guest threads: every subsequent
    /// hook belongs to `tid` until the next `thread` call. Never called
    /// for single-threaded streams (see [`Tracer::thread`]).
    fn thread(&mut self, tid: ThreadId) {
        let _ = tid;
    }
}

impl<S: EventSink + ?Sized> EventSink for &mut S {
    fn event(&mut self, event: &Event) {
        (**self).event(event);
    }

    fn frame_push(&mut self, info: &FrameInfo) {
        (**self).frame_push(info);
    }

    fn frame_pop(&mut self) {
        (**self).frame_pop();
    }

    fn thread(&mut self, tid: ThreadId) {
        (**self).thread(tid);
    }
}

/// Broadcasts to two sinks: `(a, b)` forwards every hook to `a` then `b`.
impl<A: EventSink, B: EventSink> EventSink for (A, B) {
    fn event(&mut self, event: &Event) {
        self.0.event(event);
        self.1.event(event);
    }

    fn frame_push(&mut self, info: &FrameInfo) {
        self.0.frame_push(info);
        self.1.frame_push(info);
    }

    fn frame_pop(&mut self) {
        self.0.frame_pop();
        self.1.frame_pop();
    }

    fn thread(&mut self, tid: ThreadId) {
        self.0.thread(tid);
        self.1.thread(tid);
    }
}

/// Adapts an [`EventSink`] into a [`Tracer`] so it can be attached to a
/// live VM run. The inner sink is public so callers can recover it (e.g.
/// to finish a trace writer) after the run.
#[derive(Debug)]
pub struct SinkTracer<S: EventSink>(pub S);

impl<S: EventSink> Tracer for SinkTracer<S> {
    fn instr(&mut self, event: &Event) {
        self.0.event(event);
    }

    fn frame_push(&mut self, info: &FrameInfo) {
        self.0.frame_push(info);
    }

    fn frame_pop(&mut self) {
        self.0.frame_pop();
    }

    fn thread(&mut self, tid: ThreadId) {
        self.0.thread(tid);
    }
}

/// Adapts a [`Tracer`] into an [`EventSink`] so existing profilers can be
/// driven from a replayed trace.
#[derive(Debug)]
pub struct TracerSink<T: Tracer>(pub T);

impl<T: Tracer> EventSink for TracerSink<T> {
    fn event(&mut self, event: &Event) {
        self.0.instr(event);
    }

    fn frame_push(&mut self, info: &FrameInfo) {
        self.0.frame_push(info);
    }

    fn frame_pop(&mut self) {
        self.0.frame_pop();
    }

    fn thread(&mut self, tid: ThreadId) {
        self.0.thread(tid);
    }
}

/// Counts stream items without interpreting them — the sink-side analogue
/// of [`CountingTracer`](crate::CountingTracer), with the frame hooks
/// counted via the overridden default methods.
#[derive(Debug, Clone, Copy, Default)]
pub struct CountingSink {
    /// Number of instruction events seen.
    pub events: u64,
    /// Number of frame pushes seen.
    pub pushes: u64,
    /// Number of frame pops seen.
    pub pops: u64,
    /// Number of thread switches seen (0 for single-threaded streams).
    pub switches: u64,
}

impl CountingSink {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }
}

impl EventSink for CountingSink {
    fn event(&mut self, _event: &Event) {
        self.events += 1;
    }

    fn frame_push(&mut self, _info: &FrameInfo) {
        self.pushes += 1;
    }

    fn frame_pop(&mut self) {
        self.pops += 1;
    }

    fn thread(&mut self, _tid: ThreadId) {
        self.switches += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CountingTracer, Vm};
    use lowutil_ir::{ConstValue, ProgramBuilder};

    /// A two-method program: `main` computes, calls `twice`, and prints.
    fn call_program() -> lowutil_ir::Program {
        let mut pb = ProgramBuilder::new();
        let print = pb.native("print", 1, false);
        let mut twice = pb.method("twice", 1);
        let p0 = twice.param(0);
        let r = twice.new_local("r");
        twice.binop(r, lowutil_ir::BinOp::Add, p0, p0);
        twice.ret(r);
        let twice_id = twice.finish(&mut pb);
        let mut main = pb.method("main", 0);
        let x = main.new_local("x");
        let y = main.new_local("y");
        main.constant(x, ConstValue::Int(21));
        main.call(Some(y), twice_id, &[x]);
        main.call_native_void(print, &[y]);
        main.ret_void();
        let main_id = main.finish(&mut pb);
        pb.finish(main_id).expect("valid program")
    }

    /// Records the interleaving of instruction events and frame hooks.
    #[derive(Default)]
    struct OrderLog(Vec<String>);

    impl Tracer for OrderLog {
        fn instr(&mut self, event: &Event) {
            let tag = match event {
                Event::Compute { .. } => "compute",
                Event::Call { .. } => "call",
                Event::Return { .. } => "return",
                Event::CallComplete { .. } => "complete",
                Event::Native { .. } => "native",
                _ => "other",
            };
            self.0.push(tag.to_string());
        }

        fn frame_push(&mut self, _info: &FrameInfo) {
            self.0.push("push".to_string());
        }

        fn frame_pop(&mut self) {
            self.0.push("pop".to_string());
        }
    }

    /// Pins the ordering contract documented on `Tracer`: for a call,
    /// `Call` → `frame_push` → body → `Return` → `frame_pop` →
    /// `CallComplete`, with the entry frame announced via `frame_push`
    /// and the final `Return` popped without a `CallComplete`.
    #[test]
    fn call_ordering_contract() {
        let program = call_program();
        let mut log = OrderLog::default();
        Vm::new(&program).run(&mut log).expect("program runs");
        assert_eq!(
            log.0,
            vec![
                "push",     // entry frame
                "compute",  // x = 21
                "call",     // y = twice(x): uses available in caller
                "push",     // callee frame exists, formals receive data
                "compute",  // r = p0 + p0
                "return",   // still in the callee frame
                "pop",      // callee frame gone
                "complete", // back in the caller frame
                "native",   // print(y)
                "return",   // main's return
                "pop",      // entry frame popped, no CallComplete
            ]
        );
    }

    /// The counting adapters agree with each other and with the ordering
    /// log, exercising the overridden frame-hook defaults on both the
    /// tracer and sink sides.
    #[test]
    fn counting_adapters_count_frames() {
        let program = call_program();
        let mut ct = CountingTracer::new();
        Vm::new(&program).run(&mut ct).expect("program runs");
        let mut cs = SinkTracer(CountingSink::new());
        Vm::new(&program).run(&mut cs).expect("program runs");
        let cs = cs.0;
        assert_eq!(ct.instrs, cs.events);
        assert_eq!((ct.pushes, ct.pops), (cs.pushes, cs.pops));
        assert_eq!(ct.pushes, 2); // entry + one call
        assert_eq!(ct.pops, 2);
        assert_eq!(ct.instrs, 7); // 2 computes, call, return×2, complete, native
    }

    /// `TracerSink` round-trips a tracer through the sink interface.
    #[test]
    fn tracer_sink_forwards_all_hooks() {
        let mut s = TracerSink(CountingTracer::new());
        let at = lowutil_ir::InstrId::new(lowutil_ir::MethodId(0), 0);
        s.event(&Event::Jump { at });
        s.frame_push(&FrameInfo {
            method: lowutil_ir::MethodId(0),
            call_site: None,
            num_params: 0,
            num_locals: 0,
            receiver: None,
            num_args: 0,
        });
        s.frame_pop();
        assert_eq!((s.0.instrs, s.0.pushes, s.0.pops), (1, 1, 1));
    }
}
