//! The instrumentation event stream.
//!
//! Every executed instruction produces one [`Event`] carrying the
//! information the paper's instrumentation rules (Figure 4) need: which
//! local is defined, which locals are *used under the thin-slicing rule*
//! (base pointers excluded, array indices included), which heap location is
//! touched and on which object, and the value produced — the latter so that
//! value-sensitive abstract domains (null-origin tracking) can classify
//! instruction instances without re-querying the VM.
//!
//! Frame pushes and pops are reported separately via
//! [`Tracer::frame_push`](crate::Tracer::frame_push) /
//! [`Tracer::frame_pop`](crate::Tracer::frame_pop), because tracers
//! maintain shadow stacks aligned with the VM call stack.

use lowutil_ir::{
    AllocSiteId, CmpOp, FieldId, InstrId, Local, MethodId, NativeId, ObjectId, StaticId, ThreadId,
    Value,
};

/// Information about a frame being pushed (rule METHOD ENTRY).
#[derive(Debug, Clone)]
pub struct FrameInfo {
    /// The callee.
    pub method: MethodId,
    /// Call site in the caller, or `None` for the entry frame.
    pub call_site: Option<InstrId>,
    /// Number of parameters (including the receiver for instance methods).
    pub num_params: u16,
    /// Total local slots in the new frame.
    pub num_locals: u16,
    /// The receiver object for instance methods (the first argument when
    /// it is a reference), used to extend the object-sensitive context
    /// chain.
    pub receiver: Option<ObjectId>,
    /// Number of arguments passed at the call site (0 for the entry
    /// frame). Formals `0..num_args` receive the actuals' tracking data;
    /// the actual locals themselves were already reported in the
    /// preceding [`Event::Call`], so carrying just the count keeps this
    /// per-call struct allocation-free.
    pub num_args: u16,
}

/// One executed instruction, as seen by a [`Tracer`](crate::Tracer).
///
/// `at` is always the executing static instruction; `value` fields carry
/// runtime values for value-sensitive domains.
#[derive(Debug, Clone)]
pub enum Event {
    /// A stack-only computation: `Const`, `Move`, `Binop`, `Unop`, `Cmp`.
    /// Uses are the thin-slicing uses (operand locals).
    Compute {
        /// The executing instruction.
        at: InstrId,
        /// Defined local.
        dst: Local,
        /// Used locals (0, 1, or 2 of them).
        uses: [Option<Local>; 2],
        /// The value written to `dst`.
        value: Value,
    },
    /// A predicate: `if (lhs op rhs) goto …` (rule PREDICATE).
    Predicate {
        /// The executing instruction.
        at: InstrId,
        /// The comparison operator.
        op: CmpOp,
        /// Used locals.
        uses: [Local; 2],
        /// Whether the branch was taken.
        taken: bool,
    },
    /// An allocation (rule ALLOC). `dst` now holds `object`.
    Alloc {
        /// The executing instruction.
        at: InstrId,
        /// Defined local.
        dst: Local,
        /// The fresh object.
        object: ObjectId,
        /// Its allocation site.
        site: AllocSiteId,
        /// For `NewArray`, the local holding the length (a thin use).
        len_use: Option<Local>,
    },
    /// `dst = obj.field` (rule LOAD FIELD). The base pointer is *not* a
    /// thin use; the read heap location is (`object`, `field`).
    LoadField {
        /// The executing instruction.
        at: InstrId,
        /// Defined local.
        dst: Local,
        /// Local holding the base pointer (a use only under *traditional*
        /// slicing).
        base: Local,
        /// The base object.
        object: ObjectId,
        /// The field.
        field: FieldId,
        /// Storage offset of the field within the object.
        offset: u32,
        /// The loaded value.
        value: Value,
    },
    /// `obj.field = src` (rule STORE FIELD).
    StoreField {
        /// The executing instruction.
        at: InstrId,
        /// Local holding the base pointer (a traditional-slicing use).
        base: Local,
        /// The base object.
        object: ObjectId,
        /// The field.
        field: FieldId,
        /// Storage offset of the field within the object.
        offset: u32,
        /// Local holding the stored value (a thin use).
        src: Local,
        /// The stored value.
        value: Value,
    },
    /// `dst = Static` (rule LOAD STATIC).
    LoadStatic {
        /// The executing instruction.
        at: InstrId,
        /// Defined local.
        dst: Local,
        /// The static field.
        field: StaticId,
        /// The loaded value.
        value: Value,
    },
    /// `Static = src` (rule STORE STATIC).
    StoreStatic {
        /// The executing instruction.
        at: InstrId,
        /// The static field.
        field: StaticId,
        /// Local holding the stored value (a thin use).
        src: Local,
        /// The stored value.
        value: Value,
    },
    /// `dst = arr[idx]`. The index local *is* a thin use.
    ArrayLoad {
        /// The executing instruction.
        at: InstrId,
        /// Defined local.
        dst: Local,
        /// Local holding the base pointer (a traditional-slicing use).
        base: Local,
        /// The array object.
        object: ObjectId,
        /// Local holding the index (a thin use).
        idx: Local,
        /// The runtime index.
        index: u32,
        /// The loaded value.
        value: Value,
    },
    /// `arr[idx] = src`.
    ArrayStore {
        /// The executing instruction.
        at: InstrId,
        /// Local holding the base pointer (a traditional-slicing use).
        base: Local,
        /// The array object.
        object: ObjectId,
        /// Local holding the index (a thin use).
        idx: Local,
        /// The runtime index.
        index: u32,
        /// Local holding the stored value (a thin use).
        src: Local,
        /// The stored value.
        value: Value,
    },
    /// `dst = arr.length` — reads the array's header, treated as a heap
    /// read with no thin uses (the base pointer is excluded).
    ArrayLen {
        /// The executing instruction.
        at: InstrId,
        /// Defined local.
        dst: Local,
        /// Local holding the base pointer (a traditional-slicing use).
        base: Local,
        /// The array object.
        object: ObjectId,
        /// The length value written to `dst`.
        value: Value,
    },
    /// A call instruction, reported *before* the callee frame is pushed.
    /// Tracers push the tracking data of `args` onto their tracking stack
    /// (the paper's call-part rule).
    Call {
        /// The executing call instruction.
        at: InstrId,
        /// Resolved callee.
        callee: MethodId,
        /// Argument locals in the caller frame.
        args: Vec<Local>,
    },
    /// A `return` instruction, reported *before* the frame is popped.
    /// Tracers stash the tracking data of `src` (rule RETURN).
    Return {
        /// The executing return instruction.
        at: InstrId,
        /// Local holding the return value, if any.
        src: Option<Local>,
        /// The returned value.
        value: Option<Value>,
    },
    /// Control has returned to a call site; `dst` (in the caller frame) now
    /// holds the returned value. Reported *after* the frame pop.
    CallComplete {
        /// The call instruction.
        at: InstrId,
        /// Destination local in the caller, if the call stores its result.
        dst: Option<Local>,
        /// The returned value, if any.
        value: Option<Value>,
    },
    /// A native call (native node): arguments are consumed; `dst`, if
    /// present, is defined by the native.
    Native {
        /// The executing instruction.
        at: InstrId,
        /// The native method.
        native: NativeId,
        /// Argument locals (thin uses).
        args: Vec<Local>,
        /// Destination local, if the native produces a value.
        dst: Option<Local>,
        /// The produced value, if any.
        value: Option<Value>,
    },
    /// A phase marker fired (see [`NativeKind::PhaseBegin`]
    /// [`NativeKind::PhaseEnd`]): profilers may arm/disarm themselves.
    ///
    /// [`NativeKind::PhaseBegin`]: crate::NativeKind::PhaseBegin
    /// [`NativeKind::PhaseEnd`]: crate::NativeKind::PhaseEnd
    Phase {
        /// The executing instruction.
        at: InstrId,
        /// `true` for `phase_begin`, `false` for `phase_end`.
        begin: bool,
    },
    /// An unconditional jump. Carries no data flow; counted for instruction
    /// totals only.
    Jump {
        /// The executing instruction.
        at: InstrId,
    },
    /// `dst = spawn m(args…)` — a new guest thread was created. The
    /// argument locals are thin uses (their tracking data flows to the
    /// spawned thread's formals); `dst` receives the thread handle.
    Spawn {
        /// The executing instruction.
        at: InstrId,
        /// Local receiving the thread handle.
        dst: Local,
        /// The freshly assigned thread id.
        thread: ThreadId,
        /// The method the new thread runs.
        callee: MethodId,
        /// Argument locals in the spawning frame.
        args: Vec<Local>,
    },
    /// `dst = join t` — the joining thread observed the target thread's
    /// completion. The target's return-value tracking data flows to `dst`
    /// (the cross-thread analogue of `CallComplete`).
    Join {
        /// The executing instruction.
        at: InstrId,
        /// Destination local, if the join stores the thread's result.
        dst: Option<Local>,
        /// The joined thread.
        thread: ThreadId,
        /// The joined thread's return value, if any.
        value: Option<Value>,
    },
}

impl Event {
    /// The static instruction this event describes.
    pub fn at(&self) -> InstrId {
        match self {
            Event::Compute { at, .. }
            | Event::Predicate { at, .. }
            | Event::Alloc { at, .. }
            | Event::LoadField { at, .. }
            | Event::StoreField { at, .. }
            | Event::LoadStatic { at, .. }
            | Event::StoreStatic { at, .. }
            | Event::ArrayLoad { at, .. }
            | Event::ArrayStore { at, .. }
            | Event::ArrayLen { at, .. }
            | Event::Call { at, .. }
            | Event::Return { at, .. }
            | Event::CallComplete { at, .. }
            | Event::Native { at, .. }
            | Event::Phase { at, .. }
            | Event::Jump { at }
            | Event::Spawn { at, .. }
            | Event::Join { at, .. } => *at,
        }
    }

    /// The value produced by this event's instruction, if it defines one.
    pub fn produced_value(&self) -> Option<Value> {
        match self {
            Event::Compute { value, .. }
            | Event::LoadField { value, .. }
            | Event::LoadStatic { value, .. }
            | Event::ArrayLoad { value, .. }
            | Event::ArrayLen { value, .. } => Some(*value),
            Event::StoreField { value, .. }
            | Event::StoreStatic { value, .. }
            | Event::ArrayStore { value, .. } => Some(*value),
            Event::Alloc { object, .. } => Some(Value::Ref(*object)),
            Event::CallComplete { value, .. }
            | Event::Return { value, .. }
            | Event::Native { value, .. }
            | Event::Join { value, .. } => *value,
            Event::Spawn { thread, .. } => Some(Value::Int(i64::from(thread.0))),
            Event::Predicate { .. }
            | Event::Call { .. }
            | Event::Phase { .. }
            | Event::Jump { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn at_is_uniform_across_variants() {
        let at = InstrId::new(MethodId(1), 4);
        let e = Event::Jump { at };
        assert_eq!(e.at(), at);
        let e = Event::Predicate {
            at,
            op: CmpOp::Lt,
            uses: [Local(0), Local(1)],
            taken: true,
        };
        assert_eq!(e.at(), at);
        assert_eq!(e.produced_value(), None);
    }

    #[test]
    fn produced_value_reports_definitions() {
        let at = InstrId::new(MethodId(0), 0);
        let e = Event::Compute {
            at,
            dst: Local(0),
            uses: [None, None],
            value: Value::Int(3),
        };
        assert_eq!(e.produced_value(), Some(Value::Int(3)));
        let e = Event::Alloc {
            at,
            dst: Local(0),
            object: ObjectId(9),
            site: AllocSiteId(2),
            len_use: None,
        };
        assert_eq!(e.produced_value(), Some(Value::Ref(ObjectId(9))));
    }
}
