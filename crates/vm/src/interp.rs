//! The execution engine.
//!
//! An iterative (explicit-call-stack) interpreter over validated
//! [`Program`]s. Every executed instruction is counted and reported to the
//! attached [`Tracer`]; runtime failures surface as [`Trap`]s carrying the
//! faulting instruction, which the null-origin analysis uses as its seed.

use crate::event::{Event, FrameInfo};
use crate::heap::Heap;
use crate::natives::{NativeKind, NativeRegistry, NativeState};
use crate::tracer::Tracer;
use lowutil_ir::{
    BinOp, Callee, ClassId, CmpOp, Instr, InstrId, Local, MethodId, Pc, Program, ThreadId, UnOp,
    Value,
};
use std::error::Error;
use std::fmt;

/// Limits and seeds for one run.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Abort with [`TrapKind::InstructionBudgetExceeded`] after this many
    /// executed instructions. Guards against runaway loops in workloads.
    pub max_instructions: u64,
    /// Maximum call-stack depth (per guest thread).
    pub max_stack: usize,
    /// Seed for the deterministic `rand` native.
    pub seed: u64,
    /// Seed for the deterministic round-robin thread scheduler. Different
    /// seeds produce different (but reproducible) interleavings; race-free
    /// programs produce identical profiles under every seed.
    pub sched_seed: u64,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            max_instructions: 2_000_000_000,
            max_stack: 1 << 14,
            seed: 0x5eed_1011,
            sched_seed: 0,
        }
    }
}

/// What a completed run produced.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Total executed instructions (the paper's column `I`, at workload
    /// scale).
    pub instructions_executed: u64,
    /// Instructions executed while a `phase_begin`/`phase_end` window was
    /// open (0 if the program has no phase markers).
    pub instructions_in_phase: u64,
    /// The entry method's return value.
    pub return_value: Option<Value>,
    /// Values passed to `print`/`sink` natives, in order — the program's
    /// observable output, used to check that optimized workload variants
    /// are behaviour-preserving.
    pub output: Vec<Value>,
    /// Total objects allocated.
    pub objects_allocated: usize,
}

/// Why execution aborted.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TrapKind {
    /// A field/array access or virtual call on a null reference. The local
    /// holding the null base pointer is recorded for null-origin tracking.
    NullDereference {
        /// The base-pointer local.
        base: Local,
    },
    /// An array access outside `[0, len)`.
    IndexOutOfBounds {
        /// The runtime index.
        index: i64,
        /// The array length.
        len: usize,
    },
    /// Integer division or remainder by zero.
    DivideByZero,
    /// An operand had the wrong kind for its operator.
    TypeError {
        /// Description of the mismatch.
        message: String,
    },
    /// Call-stack depth exceeded [`RunConfig::max_stack`].
    StackOverflow,
    /// Virtual dispatch found no method of the given name.
    NoSuchMethod {
        /// The receiver's dynamic class.
        class: ClassId,
        /// The interned method-name index.
        name_idx: u32,
    },
    /// A field access on an object whose class does not declare the field.
    NoSuchField,
    /// The instruction budget of [`RunConfig::max_instructions`] ran out.
    InstructionBudgetExceeded,
    /// A declared native has no built-in behaviour.
    UnknownNative {
        /// The unresolvable name.
        name: String,
    },
    /// A virtual-call arity mismatch discovered at dispatch time.
    ArityMismatch {
        /// Parameters the resolved method declares.
        expected: usize,
        /// Arguments the call passed.
        found: usize,
    },
    /// A `join` on an integer that is not a live thread handle.
    InvalidThreadHandle {
        /// The runtime handle value.
        handle: i64,
    },
    /// Every unfinished thread is blocked on a `join` — no thread can make
    /// progress (e.g. a thread joining itself, or a join cycle).
    Deadlock,
}

/// A runtime failure, with the faulting instruction.
#[derive(Debug, Clone, PartialEq)]
pub struct Trap {
    /// What went wrong.
    pub kind: TrapKind,
    /// The faulting instruction.
    pub at: InstrId,
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            TrapKind::NullDereference { base } => {
                write!(f, "null dereference of {base} at {}", self.at)
            }
            TrapKind::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds (len {len}) at {}", self.at)
            }
            TrapKind::DivideByZero => write!(f, "division by zero at {}", self.at),
            TrapKind::TypeError { message } => write!(f, "type error at {}: {message}", self.at),
            TrapKind::StackOverflow => write!(f, "stack overflow at {}", self.at),
            TrapKind::NoSuchMethod { class, name_idx } => {
                write!(
                    f,
                    "no virtual method (name #{name_idx}) on {class} at {}",
                    self.at
                )
            }
            TrapKind::NoSuchField => write!(f, "no such field on receiver at {}", self.at),
            TrapKind::InstructionBudgetExceeded => {
                write!(f, "instruction budget exceeded at {}", self.at)
            }
            TrapKind::UnknownNative { name } => {
                write!(f, "native `{name}` has no behaviour (at {})", self.at)
            }
            TrapKind::ArityMismatch { expected, found } => {
                write!(
                    f,
                    "virtual call passes {found} args, method declares {expected}, at {}",
                    self.at
                )
            }
            TrapKind::InvalidThreadHandle { handle } => {
                write!(f, "join on invalid thread handle {handle} at {}", self.at)
            }
            TrapKind::Deadlock => {
                write!(f, "deadlock: all threads blocked on joins at {}", self.at)
            }
        }
    }
}

impl Error for Trap {}

#[derive(Debug)]
struct Frame {
    method: MethodId,
    pc: Pc,
    locals: Vec<Value>,
    /// Where the caller wants the return value.
    ret_dst: Option<Local>,
    /// The call instruction in the caller.
    call_site: Option<InstrId>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum ThreadStatus {
    Runnable,
    /// Waiting on a `join` of the named thread; woken when it finishes.
    Blocked {
        on: u32,
    },
    /// Root frame returned; the value is available to joiners forever.
    Finished(Option<Value>),
}

/// One guest thread: a private call stack plus scheduling state. Registers
/// (locals) live in the frames; the heap and statics are shared.
#[derive(Debug)]
struct GuestThread {
    stack: Vec<Frame>,
    status: ThreadStatus,
    /// Entry method and argument values, pushed as the root frame the
    /// first time the scheduler runs this thread (so the tracer sees the
    /// frame push on the thread it belongs to).
    start: Option<(MethodId, Vec<Value>)>,
}

/// xorshift64* stream driving scheduling-quantum choices. Distinct from the
/// `rand` native's stream so scheduling never perturbs program semantics.
#[derive(Debug)]
struct SchedRng(u64);

impl SchedRng {
    fn new(seed: u64) -> Self {
        // splitmix-style avalanche so seeds 0 and 1 diverge immediately.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        SchedRng((z ^ (z >> 31)) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Instructions the current thread runs before the next switch point.
    fn quantum(&mut self) -> u32 {
        1 + (self.next() % 61) as u32
    }
}

/// The interpreter.
///
/// A `Vm` borrows a validated [`Program`]; each [`Vm::run`] executes the
/// program's entry method from a fresh heap under the given [`Tracer`].
#[derive(Debug)]
pub struct Vm<'p> {
    program: &'p Program,
    config: RunConfig,
}

impl<'p> Vm<'p> {
    /// Creates a VM for `program` with the default [`RunConfig`].
    pub fn new(program: &'p Program) -> Self {
        Vm {
            program,
            config: RunConfig::default(),
        }
    }

    /// Creates a VM with an explicit configuration.
    pub fn with_config(program: &'p Program, config: RunConfig) -> Self {
        Vm { program, config }
    }

    /// The program this VM executes.
    pub fn program(&self) -> &'p Program {
        self.program
    }

    /// Executes the entry method with no arguments.
    ///
    /// # Errors
    /// Returns a [`Trap`] on any runtime failure; see [`TrapKind`].
    pub fn run<T: Tracer>(&self, tracer: &mut T) -> Result<RunOutcome, Trap> {
        self.run_method(self.program.entry(), &[], tracer)
    }

    /// Executes an arbitrary method with the given argument values.
    ///
    /// # Errors
    /// Returns a [`Trap`] on any runtime failure; see [`TrapKind`].
    pub fn run_method<T: Tracer>(
        &self,
        entry: MethodId,
        args: &[Value],
        tracer: &mut T,
    ) -> Result<RunOutcome, Trap> {
        Interp {
            program: self.program,
            config: self.config,
            registry: NativeRegistry::for_program(self.program).map_err(|e| Trap {
                kind: TrapKind::UnknownNative { name: e.name },
                at: InstrId::new(entry, 0),
            })?,
            natives: NativeState::new(self.config.seed),
            heap: Heap::new(),
            threads: Vec::new(),
            cur: 0,
            executed: 0,
            in_phase: 0,
            phase_depth: 0,
            output: Vec::new(),
            statics: Vec::new(),
        }
        .run(entry, args, tracer)
    }
}

struct Interp<'p> {
    program: &'p Program,
    config: RunConfig,
    registry: NativeRegistry,
    natives: NativeState,
    heap: Heap,
    threads: Vec<GuestThread>,
    /// Index of the currently scheduled thread.
    cur: usize,
    executed: u64,
    in_phase: u64,
    phase_depth: u32,
    output: Vec<Value>,
    statics: Vec<Value>,
}

impl<'p> Interp<'p> {
    fn trap(&self, at: InstrId, kind: TrapKind) -> Trap {
        Trap { kind, at }
    }

    fn stack(&self) -> &[Frame] {
        &self.threads[self.cur].stack
    }

    fn stack_mut(&mut self) -> &mut Vec<Frame> {
        &mut self.threads[self.cur].stack
    }

    fn push_frame<T: Tracer>(
        &mut self,
        method: MethodId,
        arg_values: &[Value],
        ret_dst: Option<Local>,
        call_site: Option<InstrId>,
        tracer: &mut T,
    ) -> Result<(), TrapKind> {
        if self.stack().len() >= self.config.max_stack {
            return Err(TrapKind::StackOverflow);
        }
        let m = self.program.method(method);
        let mut locals = vec![Value::Null; m.num_locals() as usize];
        locals[..arg_values.len()].copy_from_slice(arg_values);
        let receiver = if m.class().is_some() {
            arg_values.first().and_then(|v| v.as_ref_id())
        } else {
            None
        };
        self.stack_mut().push(Frame {
            method,
            pc: 0,
            locals,
            ret_dst,
            call_site,
        });
        tracer.frame_push(&FrameInfo {
            method,
            call_site,
            num_params: m.num_params(),
            num_locals: m.num_locals(),
            receiver,
            num_args: arg_values.len() as u16,
        });
        Ok(())
    }

    fn run<T: Tracer>(
        mut self,
        entry: MethodId,
        args: &[Value],
        tracer: &mut T,
    ) -> Result<RunOutcome, Trap> {
        self.threads.push(GuestThread {
            stack: Vec::new(),
            status: ThreadStatus::Runnable,
            start: Some((entry, args.to_vec())),
        });
        let mut rng = SchedRng::new(self.config.sched_seed);
        let mut quantum = rng.quantum();

        let mut final_return: Option<Value> = None;
        'sched: loop {
            // Wake joiners whose target finished, then pick a thread:
            // keep the current one while it is runnable and has quantum
            // left, else round-robin to the next runnable thread. A
            // single-threaded program never switches, so the tracer's
            // `thread` hook is never called — the event stream is
            // byte-identical to the pre-thread VM.
            for i in 0..self.threads.len() {
                if let ThreadStatus::Blocked { on } = self.threads[i].status {
                    if matches!(self.threads[on as usize].status, ThreadStatus::Finished(_)) {
                        self.threads[i].status = ThreadStatus::Runnable;
                    }
                }
            }
            if quantum == 0 || self.threads[self.cur].status != ThreadStatus::Runnable {
                let n = self.threads.len();
                let mut next = None;
                for off in 1..=n {
                    let t = (self.cur + off) % n;
                    if self.threads[t].status == ThreadStatus::Runnable {
                        next = Some(t);
                        break;
                    }
                }
                match next {
                    Some(t) => {
                        if t != self.cur {
                            tracer.thread(ThreadId(t as u32));
                            self.cur = t;
                        }
                        quantum = rng.quantum();
                    }
                    None => {
                        if self
                            .threads
                            .iter()
                            .all(|t| matches!(t.status, ThreadStatus::Finished(_)))
                        {
                            break 'sched;
                        }
                        // Every unfinished thread is blocked: deadlock.
                        // Report the join site of the lowest such thread.
                        let at = self
                            .threads
                            .iter()
                            .find(|t| matches!(t.status, ThreadStatus::Blocked { .. }))
                            .and_then(|t| t.stack.last())
                            .map(|f| InstrId::new(f.method, f.pc))
                            .unwrap_or(InstrId::new(entry, 0));
                        return Err(self.trap(at, TrapKind::Deadlock));
                    }
                }
            }
            if let Some((m, start_args)) = self.threads[self.cur].start.take() {
                self.push_frame(m, &start_args, None, None, tracer)
                    .map_err(|k| self.trap(InstrId::new(m, 0), k))?;
            }

            let (method, pc) = {
                let f = self.stack().last().expect("non-empty stack");
                (f.method, f.pc)
            };
            let at = InstrId::new(method, pc);
            // `self.program` is `&'p Program`, so the instruction can be
            // borrowed for 'p through a copy of the reference — no
            // per-instruction clone, and no conflict with the `&mut self`
            // borrow in `step`.
            let program: &'p Program = self.program;
            let instr = program.instr(at);
            // A join whose target has not finished blocks *without*
            // executing: the attempt is not counted and emits no event, so
            // instruction totals and traces stay schedule-independent.
            if let Instr::Join { thread, .. } = instr {
                let tid = self.thread_handle(*thread).map_err(|k| self.trap(at, k))?;
                if !matches!(self.threads[tid.index()].status, ThreadStatus::Finished(_)) {
                    self.threads[self.cur].status = ThreadStatus::Blocked { on: tid.0 };
                    continue 'sched;
                }
            }
            if self.executed >= self.config.max_instructions {
                return Err(self.trap(at, TrapKind::InstructionBudgetExceeded));
            }
            self.executed += 1;
            quantum -= 1;
            if self.phase_depth > 0 {
                self.in_phase += 1;
            }
            match self.step(at, instr, tracer) {
                Ok(Step::Next) => {
                    self.stack_mut().last_mut().expect("frame").pc = pc + 1;
                }
                Ok(Step::Jump(target)) => {
                    self.stack_mut().last_mut().expect("frame").pc = target;
                }
                Ok(Step::Enter) => {
                    // Frame already pushed; new frame starts at pc 0.
                }
                Ok(Step::Leave(value)) => {
                    let frame = self.stack_mut().pop().expect("frame");
                    tracer.frame_pop();
                    match self.stack_mut().last_mut() {
                        Some(caller) => {
                            let call_at = frame.call_site.expect("non-entry frame has call site");
                            let dst = frame.ret_dst;
                            if let Some(d) = dst {
                                match value {
                                    Some(v) => caller.locals[d.index()] = v,
                                    None => {
                                        return Err(self.trap(
                                            call_at,
                                            TrapKind::TypeError {
                                                message: "void return assigned to a local"
                                                    .to_string(),
                                            },
                                        ))
                                    }
                                }
                            }
                            tracer.instr(&Event::CallComplete {
                                at: call_at,
                                dst,
                                value,
                            });
                            caller.pc = call_at.pc + 1;
                        }
                        None => {
                            // Root frame returned: the thread is done.
                            if self.cur == 0 {
                                final_return = value;
                            }
                            self.threads[self.cur].status = ThreadStatus::Finished(value);
                        }
                    }
                }
                Err(kind) => return Err(self.trap(at, kind)),
            }
        }

        Ok(RunOutcome {
            instructions_executed: self.executed,
            instructions_in_phase: self.in_phase,
            return_value: final_return,
            output: self.output,
            objects_allocated: self.heap.len(),
        })
    }

    fn local(&self, l: Local) -> Value {
        self.stack().last().expect("frame").locals[l.index()]
    }

    fn set_local(&mut self, l: Local, v: Value) {
        self.stack_mut().last_mut().expect("frame").locals[l.index()] = v;
    }

    /// Decodes a thread handle held in a local.
    fn thread_handle(&self, l: Local) -> Result<ThreadId, TrapKind> {
        match self.local(l) {
            Value::Int(i) if i >= 0 && (i as usize) < self.threads.len() => Ok(ThreadId(i as u32)),
            Value::Int(i) => Err(TrapKind::InvalidThreadHandle { handle: i }),
            other => Err(TrapKind::TypeError {
                message: format!("join on non-thread value {other}"),
            }),
        }
    }

    fn as_object(&self, l: Local) -> Result<lowutil_ir::ObjectId, TrapKind> {
        match self.local(l) {
            Value::Ref(o) => Ok(o),
            Value::Null => Err(TrapKind::NullDereference { base: l }),
            _ => Err(TrapKind::TypeError {
                message: format!("{l} does not hold a reference"),
            }),
        }
    }

    fn step<T: Tracer>(
        &mut self,
        at: InstrId,
        instr: &Instr,
        tracer: &mut T,
    ) -> Result<Step, TrapKind> {
        match instr {
            Instr::Const { dst, value } => {
                let v = Value::from(*value);
                self.set_local(*dst, v);
                tracer.instr(&Event::Compute {
                    at,
                    dst: *dst,
                    uses: [None, None],
                    value: v,
                });
                Ok(Step::Next)
            }
            Instr::Move { dst, src } => {
                let v = self.local(*src);
                self.set_local(*dst, v);
                tracer.instr(&Event::Compute {
                    at,
                    dst: *dst,
                    uses: [Some(*src), None],
                    value: v,
                });
                Ok(Step::Next)
            }
            Instr::Binop { dst, op, lhs, rhs } => {
                let v = eval_binop(*op, self.local(*lhs), self.local(*rhs))?;
                self.set_local(*dst, v);
                tracer.instr(&Event::Compute {
                    at,
                    dst: *dst,
                    uses: [Some(*lhs), Some(*rhs)],
                    value: v,
                });
                Ok(Step::Next)
            }
            Instr::Unop { dst, op, src } => {
                let v = eval_unop(*op, self.local(*src))?;
                self.set_local(*dst, v);
                tracer.instr(&Event::Compute {
                    at,
                    dst: *dst,
                    uses: [Some(*src), None],
                    value: v,
                });
                Ok(Step::Next)
            }
            Instr::Cmp { dst, op, lhs, rhs } => {
                let b = eval_cmp(*op, self.local(*lhs), self.local(*rhs))?;
                let v = Value::Int(i64::from(b));
                self.set_local(*dst, v);
                tracer.instr(&Event::Compute {
                    at,
                    dst: *dst,
                    uses: [Some(*lhs), Some(*rhs)],
                    value: v,
                });
                Ok(Step::Next)
            }
            Instr::Branch {
                op,
                lhs,
                rhs,
                target,
            } => {
                let taken = eval_cmp(*op, self.local(*lhs), self.local(*rhs))?;
                tracer.instr(&Event::Predicate {
                    at,
                    op: *op,
                    uses: [*lhs, *rhs],
                    taken,
                });
                if taken {
                    Ok(Step::Jump(*target))
                } else {
                    Ok(Step::Next)
                }
            }
            Instr::Jump { target } => {
                tracer.instr(&Event::Jump { at });
                Ok(Step::Jump(*target))
            }
            Instr::New { dst, class } => {
                let site = self
                    .program
                    .alloc_site_at(at)
                    .expect("validated alloc instruction has a site");
                let slots = self.program.class(*class).num_slots();
                let obj = self.heap.alloc_object(*class, slots, site);
                self.set_local(*dst, Value::Ref(obj));
                tracer.instr(&Event::Alloc {
                    at,
                    dst: *dst,
                    object: obj,
                    site,
                    len_use: None,
                });
                Ok(Step::Next)
            }
            Instr::NewArray { dst, len } => {
                let site = self
                    .program
                    .alloc_site_at(at)
                    .expect("validated alloc instruction has a site");
                let n = match self.local(*len) {
                    Value::Int(n) if n >= 0 => n as usize,
                    Value::Int(n) => return Err(TrapKind::IndexOutOfBounds { index: n, len: 0 }),
                    _ => {
                        return Err(TrapKind::TypeError {
                            message: "array length is not an integer".to_string(),
                        })
                    }
                };
                let obj = self.heap.alloc_array(n, site);
                self.set_local(*dst, Value::Ref(obj));
                tracer.instr(&Event::Alloc {
                    at,
                    dst: *dst,
                    object: obj,
                    site,
                    len_use: Some(*len),
                });
                Ok(Step::Next)
            }
            Instr::GetField { dst, obj, field } => {
                let o = self.as_object(*obj)?;
                let ho = self.heap.get(o).expect("live object");
                let class = ho.class().ok_or(TrapKind::NoSuchField)?;
                let offset = self
                    .program
                    .field_offset(class, *field)
                    .ok_or(TrapKind::NoSuchField)?;
                let v = ho.get(offset as usize).ok_or(TrapKind::NoSuchField)?;
                self.set_local(*dst, v);
                tracer.instr(&Event::LoadField {
                    at,
                    dst: *dst,
                    base: *obj,
                    object: o,
                    field: *field,
                    offset,
                    value: v,
                });
                Ok(Step::Next)
            }
            Instr::PutField { obj, field, src } => {
                let o = self.as_object(*obj)?;
                let v = self.local(*src);
                let class = self
                    .heap
                    .get(o)
                    .expect("live object")
                    .class()
                    .ok_or(TrapKind::NoSuchField)?;
                let offset = self
                    .program
                    .field_offset(class, *field)
                    .ok_or(TrapKind::NoSuchField)?;
                self.heap
                    .get_mut(o)
                    .expect("live object")
                    .set(offset as usize, v);
                tracer.instr(&Event::StoreField {
                    at,
                    base: *obj,
                    object: o,
                    field: *field,
                    offset,
                    src: *src,
                    value: v,
                });
                Ok(Step::Next)
            }
            Instr::GetStatic { dst, field } => {
                let v = self.static_value(*field);
                self.set_local(*dst, v);
                tracer.instr(&Event::LoadStatic {
                    at,
                    dst: *dst,
                    field: *field,
                    value: v,
                });
                Ok(Step::Next)
            }
            Instr::PutStatic { field, src } => {
                let v = self.local(*src);
                self.set_static(*field, v);
                tracer.instr(&Event::StoreStatic {
                    at,
                    field: *field,
                    src: *src,
                    value: v,
                });
                Ok(Step::Next)
            }
            Instr::ArrayGet { dst, arr, idx } => {
                let o = self.as_object(*arr)?;
                let (i, v) = self.array_read(o, *idx)?;
                self.set_local(*dst, v);
                tracer.instr(&Event::ArrayLoad {
                    at,
                    dst: *dst,
                    base: *arr,
                    object: o,
                    idx: *idx,
                    index: i,
                    value: v,
                });
                Ok(Step::Next)
            }
            Instr::ArrayPut { arr, idx, src } => {
                let o = self.as_object(*arr)?;
                let v = self.local(*src);
                let i = self.array_index(o, *idx)?;
                self.heap
                    .get_mut(o)
                    .expect("live object")
                    .set(i as usize, v);
                tracer.instr(&Event::ArrayStore {
                    at,
                    base: *arr,
                    object: o,
                    idx: *idx,
                    index: i,
                    src: *src,
                    value: v,
                });
                Ok(Step::Next)
            }
            Instr::ArrayLen { dst, arr } => {
                let o = self.as_object(*arr)?;
                let ho = self.heap.get(o).expect("live object");
                if !ho.is_array() {
                    return Err(TrapKind::TypeError {
                        message: "len of a non-array".to_string(),
                    });
                }
                let v = Value::Int(ho.len() as i64);
                self.set_local(*dst, v);
                tracer.instr(&Event::ArrayLen {
                    at,
                    dst: *dst,
                    base: *arr,
                    object: o,
                    value: v,
                });
                Ok(Step::Next)
            }
            Instr::Call { dst, callee, args } => {
                let target = match callee {
                    Callee::Direct(m) => *m,
                    Callee::Virtual(name_idx) => {
                        let recv = self.as_object(args[0])?;
                        let class = self.heap.get(recv).expect("live object").class().ok_or(
                            TrapKind::TypeError {
                                message: "virtual call on an array".to_string(),
                            },
                        )?;
                        self.program.resolve_virtual(class, *name_idx).ok_or(
                            TrapKind::NoSuchMethod {
                                class,
                                name_idx: *name_idx,
                            },
                        )?
                    }
                };
                let m = self.program.method(target);
                if m.num_params() as usize != args.len() {
                    return Err(TrapKind::ArityMismatch {
                        expected: m.num_params() as usize,
                        found: args.len(),
                    });
                }
                let arg_values: Vec<Value> = args.iter().map(|&a| self.local(a)).collect();
                tracer.instr(&Event::Call {
                    at,
                    callee: target,
                    args: args.clone(),
                });
                self.push_frame(target, &arg_values, *dst, Some(at), tracer)?;
                Ok(Step::Enter)
            }
            Instr::CallNative { dst, native, args } => {
                let kind = self.registry.kind(*native);
                match kind {
                    NativeKind::PhaseBegin => {
                        self.phase_depth += 1;
                        tracer.instr(&Event::Phase { at, begin: true });
                        return Ok(Step::Next);
                    }
                    NativeKind::PhaseEnd => {
                        self.phase_depth = self.phase_depth.saturating_sub(1);
                        tracer.instr(&Event::Phase { at, begin: false });
                        return Ok(Step::Next);
                    }
                    _ => {}
                }
                let arg_values: Vec<Value> = args.iter().map(|&a| self.local(a)).collect();
                if kind == NativeKind::Sink {
                    self.output.extend(arg_values.iter().copied());
                }
                let value = self.natives.invoke(kind, &arg_values);
                if let (Some(d), Some(v)) = (dst, value) {
                    self.set_local(*d, v);
                }
                tracer.instr(&Event::Native {
                    at,
                    native: *native,
                    args: args.clone(),
                    dst: *dst,
                    value,
                });
                Ok(Step::Next)
            }
            Instr::Return { src } => {
                let value = src.map(|s| self.local(s));
                tracer.instr(&Event::Return {
                    at,
                    src: *src,
                    value,
                });
                Ok(Step::Leave(value))
            }
            Instr::Spawn { dst, callee, args } => {
                // Arity is validated statically. The child's root frame is
                // pushed when the scheduler first runs it, so its
                // frame-push event lands on the child's own event stream.
                let arg_values: Vec<Value> = args.iter().map(|&a| self.local(a)).collect();
                let tid = ThreadId(self.threads.len() as u32);
                self.threads.push(GuestThread {
                    stack: Vec::new(),
                    status: ThreadStatus::Runnable,
                    start: Some((*callee, arg_values)),
                });
                let v = Value::Int(i64::from(tid.0));
                self.set_local(*dst, v);
                tracer.instr(&Event::Spawn {
                    at,
                    dst: *dst,
                    thread: tid,
                    callee: *callee,
                    args: args.clone(),
                });
                Ok(Step::Next)
            }
            Instr::Join { dst, thread } => {
                let tid = self.thread_handle(*thread)?;
                let ThreadStatus::Finished(value) = self.threads[tid.index()].status else {
                    unreachable!("scheduler executes joins only on finished targets");
                };
                if let Some(d) = dst {
                    match value {
                        Some(v) => self.set_local(*d, v),
                        None => {
                            return Err(TrapKind::TypeError {
                                message: "void thread return assigned to a local".to_string(),
                            })
                        }
                    }
                }
                tracer.instr(&Event::Join {
                    at,
                    dst: *dst,
                    thread: tid,
                    value,
                });
                Ok(Step::Next)
            }
        }
    }

    fn array_index(&self, o: lowutil_ir::ObjectId, idx: Local) -> Result<u32, TrapKind> {
        let ho = self.heap.get(o).expect("live object");
        if !ho.is_array() {
            return Err(TrapKind::TypeError {
                message: "indexing a non-array".to_string(),
            });
        }
        match self.local(idx) {
            Value::Int(i) if i >= 0 && (i as usize) < ho.len() => Ok(i as u32),
            Value::Int(i) => Err(TrapKind::IndexOutOfBounds {
                index: i,
                len: ho.len(),
            }),
            _ => Err(TrapKind::TypeError {
                message: "array index is not an integer".to_string(),
            }),
        }
    }

    fn array_read(&self, o: lowutil_ir::ObjectId, idx: Local) -> Result<(u32, Value), TrapKind> {
        let i = self.array_index(o, idx)?;
        let v = self
            .heap
            .get(o)
            .expect("live object")
            .get(i as usize)
            .expect("bounds-checked");
        Ok((i, v))
    }

    fn static_value(&self, field: lowutil_ir::StaticId) -> Value {
        self.statics
            .get(field.index())
            .copied()
            .unwrap_or(Value::Null)
    }

    fn set_static(&mut self, field: lowutil_ir::StaticId, v: Value) {
        if self.statics.len() <= field.index() {
            self.statics.resize(field.index() + 1, Value::Null);
        }
        self.statics[field.index()] = v;
    }
}

enum Step {
    Next,
    Jump(Pc),
    Enter,
    Leave(Option<Value>),
}

fn numeric(v: Value) -> Result<f64, TrapKind> {
    match v {
        Value::Int(i) => Ok(i as f64),
        Value::Float(f) => Ok(f),
        other => Err(TrapKind::TypeError {
            message: format!("expected a number, found {other}"),
        }),
    }
}

fn eval_binop(op: BinOp, a: Value, b: Value) -> Result<Value, TrapKind> {
    use BinOp::*;
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => {
            let v = match op {
                Add => x.wrapping_add(y),
                Sub => x.wrapping_sub(y),
                Mul => x.wrapping_mul(y),
                Div => {
                    if y == 0 {
                        return Err(TrapKind::DivideByZero);
                    }
                    x.wrapping_div(y)
                }
                Rem => {
                    if y == 0 {
                        return Err(TrapKind::DivideByZero);
                    }
                    x.wrapping_rem(y)
                }
                And => x & y,
                Or => x | y,
                Xor => x ^ y,
                Shl => x.wrapping_shl(y as u32),
                Shr => x.wrapping_shr(y as u32),
            };
            Ok(Value::Int(v))
        }
        _ => {
            // Promote to float arithmetic; bitwise ops require integers.
            if matches!(op, And | Or | Xor | Shl | Shr) {
                return Err(TrapKind::TypeError {
                    message: format!("bitwise {op} on non-integers"),
                });
            }
            let (x, y) = (numeric(a)?, numeric(b)?);
            let v = match op {
                Add => x + y,
                Sub => x - y,
                Mul => x * y,
                Div => x / y,
                Rem => x % y,
                _ => unreachable!(),
            };
            Ok(Value::Float(v))
        }
    }
}

fn eval_unop(op: UnOp, v: Value) -> Result<Value, TrapKind> {
    match (op, v) {
        (UnOp::Neg, Value::Int(i)) => Ok(Value::Int(i.wrapping_neg())),
        (UnOp::Neg, Value::Float(f)) => Ok(Value::Float(-f)),
        (UnOp::Not, Value::Int(i)) => Ok(Value::Int(!i)),
        (UnOp::IntToFloat, Value::Int(i)) => Ok(Value::Float(i as f64)),
        (UnOp::FloatToInt, Value::Float(f)) => Ok(Value::Int(f as i64)),
        (UnOp::FloatToInt, Value::Int(i)) => Ok(Value::Int(i)),
        (op, v) => Err(TrapKind::TypeError {
            message: format!("{op} applied to {v}"),
        }),
    }
}

fn eval_cmp(op: CmpOp, a: Value, b: Value) -> Result<bool, TrapKind> {
    match op {
        CmpOp::Eq | CmpOp::Ne => {
            let eq = match (a, b) {
                (Value::Null, Value::Null) => true,
                (Value::Ref(x), Value::Ref(y)) => x == y,
                (Value::Int(x), Value::Int(y)) => x == y,
                (Value::Float(x), Value::Float(y)) => x == y,
                (Value::Int(x), Value::Float(y)) | (Value::Float(y), Value::Int(x)) => {
                    x as f64 == y
                }
                _ => false,
            };
            Ok(if op == CmpOp::Eq { eq } else { !eq })
        }
        _ => {
            let (x, y) = (numeric(a)?, numeric(b)?);
            Ok(match op {
                CmpOp::Lt => x < y,
                CmpOp::Le => x <= y,
                CmpOp::Gt => x > y,
                CmpOp::Ge => x >= y,
                CmpOp::Eq | CmpOp::Ne => unreachable!(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::{CountingTracer, NullTracer};
    use lowutil_ir::{ConstValue, ProgramBuilder};

    fn simple_loop_program(n: i64) -> Program {
        // main() { s = 0; i = 0; while (i < n) { s = s + i; i = i + 1 } print(s) }
        let mut pb = ProgramBuilder::new();
        let print = pb.native("print", 1, false);
        let mut m = pb.method("main", 0);
        let s = m.new_local("s");
        let i = m.new_local("i");
        let one = m.new_local("one");
        let lim = m.new_local("lim");
        m.iconst(s, 0);
        m.iconst(i, 0);
        m.iconst(one, 1);
        m.iconst(lim, n);
        let head = m.label();
        let done = m.label();
        m.bind(head);
        m.branch(CmpOp::Ge, i, lim, done);
        m.binop(s, BinOp::Add, s, i);
        m.binop(i, BinOp::Add, i, one);
        m.jump(head);
        m.bind(done);
        m.call_native_void(print, &[s]);
        m.ret_void();
        let main = m.finish(&mut pb);
        pb.finish(main).unwrap()
    }

    #[test]
    fn loop_sums_and_prints() {
        let p = simple_loop_program(10);
        let out = Vm::new(&p).run(&mut NullTracer).unwrap();
        assert_eq!(out.output, vec![Value::Int(45)]);
        assert!(out.return_value.is_none());
    }

    #[test]
    fn counting_tracer_sees_every_instruction() {
        let p = simple_loop_program(3);
        let mut t = CountingTracer::new();
        let out = Vm::new(&p).run(&mut t).unwrap();
        assert_eq!(t.instrs, out.instructions_executed);
        assert_eq!(t.pushes, 1);
        assert_eq!(t.pops, 1);
    }

    #[test]
    fn instruction_budget_traps() {
        let p = simple_loop_program(1_000_000);
        let vm = Vm::with_config(
            &p,
            RunConfig {
                max_instructions: 100,
                ..RunConfig::default()
            },
        );
        let e = vm.run(&mut NullTracer).unwrap_err();
        assert_eq!(e.kind, TrapKind::InstructionBudgetExceeded);
    }

    #[test]
    fn division_by_zero_traps_with_location() {
        let mut pb = ProgramBuilder::new();
        let mut m = pb.method("main", 0);
        let a = m.new_local("a");
        let b = m.new_local("b");
        m.iconst(a, 1);
        m.iconst(b, 0);
        m.binop(a, BinOp::Div, a, b);
        m.ret_void();
        let main = m.finish(&mut pb);
        let p = pb.finish(main).unwrap();
        let e = Vm::new(&p).run(&mut NullTracer).unwrap_err();
        assert_eq!(e.kind, TrapKind::DivideByZero);
        assert_eq!(e.at.pc, 2);
    }

    #[test]
    fn null_dereference_reports_base_local() {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("C").finish(&mut pb);
        let f = pb.field(c, "f");
        let mut m = pb.method("main", 0);
        let o = m.new_local("o");
        let x = m.new_local("x");
        m.constant(o, ConstValue::Null);
        m.get_field(x, o, f);
        m.ret_void();
        let main = m.finish(&mut pb);
        let p = pb.finish(main).unwrap();
        let e = Vm::new(&p).run(&mut NullTracer).unwrap_err();
        assert_eq!(e.kind, TrapKind::NullDereference { base: o });
    }

    #[test]
    fn virtual_dispatch_picks_override() {
        let mut pb = ProgramBuilder::new();
        let print = pb.native("print", 1, false);
        let a = pb.class("A").finish(&mut pb);
        let b = pb.class("B").extends(a).finish(&mut pb);
        let mut fa = pb.method_on(a, "f", 0);
        let r = fa.new_local("r");
        fa.iconst(r, 1);
        fa.ret(r);
        fa.finish(&mut pb);
        let mut fb = pb.method_on(b, "f", 0);
        let r = fb.new_local("r");
        fb.iconst(r, 2);
        fb.ret(r);
        fb.finish(&mut pb);
        let mut m = pb.method("main", 0);
        let oa = m.new_local("oa");
        let ob = m.new_local("ob");
        let v = m.new_local("v");
        m.new_obj(oa, a);
        m.call_virtual(Some(v), "f", &[oa]);
        m.call_native_void(print, &[v]);
        m.new_obj(ob, b);
        m.call_virtual(Some(v), "f", &[ob]);
        m.call_native_void(print, &[v]);
        m.ret_void();
        let main = m.finish(&mut pb);
        let p = pb.finish(main).unwrap();
        let out = Vm::new(&p).run(&mut NullTracer).unwrap();
        assert_eq!(out.output, vec![Value::Int(1), Value::Int(2)]);
    }

    #[test]
    fn fields_and_arrays_round_trip() {
        let src = r#"
native print/1
class Box { v }
method main/0 {
  b = new Box
  x = 7
  b.v = x
  y = b.v
  n = 3
  a = newarray n
  i = 1
  a[i] = y
  z = a[i]
  l = len a
  native print(z)
  native print(l)
  return
}
"#;
        let p = lowutil_ir::parse_program(src).unwrap();
        let out = Vm::new(&p).run(&mut NullTracer).unwrap();
        assert_eq!(out.output, vec![Value::Int(7), Value::Int(3)]);
        assert_eq!(out.objects_allocated, 2);
    }

    #[test]
    fn statics_default_to_null_and_persist() {
        let src = r#"
native print/1
static G
method main/0 {
  x = 5
  $G = x
  y = call get()
  native print(y)
  return
}
method get/0 {
  r = $G
  return r
}
"#;
        let p = lowutil_ir::parse_program(src).unwrap();
        let out = Vm::new(&p).run(&mut NullTracer).unwrap();
        assert_eq!(out.output, vec![Value::Int(5)]);
    }

    #[test]
    fn phase_markers_window_instruction_counts() {
        let src = r#"
native phase_begin/0
native phase_end/0
method main/0 {
  x = 1
  native phase_begin()
  y = 2
  z = 3
  native phase_end()
  w = 4
  return
}
"#;
        let p = lowutil_ir::parse_program(src).unwrap();
        let out = Vm::new(&p).run(&mut NullTracer).unwrap();
        // phase window covers: phase_begin itself? No: the begin marker
        // increments depth during its own step *before* counting? Depth is
        // raised inside step, after the count — so the window counts
        // y, z, and phase_end.
        assert_eq!(out.instructions_in_phase, 3);
        assert_eq!(out.instructions_executed, 7);
    }

    #[test]
    fn recursion_overflows_gracefully() {
        let src = r#"
method main/0 {
  call main()
  return
}
"#;
        let p = lowutil_ir::parse_program(src).unwrap();
        let vm = Vm::with_config(
            &p,
            RunConfig {
                max_stack: 64,
                ..RunConfig::default()
            },
        );
        let e = vm.run(&mut NullTracer).unwrap_err();
        assert_eq!(e.kind, TrapKind::StackOverflow);
    }

    #[test]
    fn float_promotion_in_arithmetic() {
        let mut pb = ProgramBuilder::new();
        let print = pb.native("print", 1, false);
        let mut m = pb.method("main", 0);
        let a = m.new_local("a");
        let b = m.new_local("b");
        m.constant(a, ConstValue::Int(3));
        m.constant(b, ConstValue::Float(0.5));
        m.binop(a, BinOp::Add, a, b);
        m.call_native_void(print, &[a]);
        m.ret_void();
        let main = m.finish(&mut pb);
        let p = pb.finish(main).unwrap();
        let out = Vm::new(&p).run(&mut NullTracer).unwrap();
        assert_eq!(out.output, vec![Value::Float(3.5)]);
    }

    #[test]
    fn method_arguments_arrive_in_order() {
        let src = r#"
native print/1
method main/0 {
  a = 10
  b = 20
  r = call sub(a, b)
  native print(r)
  return
}
method sub/2 {
  r = p0 - p1
  return r
}
"#;
        let p = lowutil_ir::parse_program(src).unwrap();
        let out = Vm::new(&p).run(&mut NullTracer).unwrap();
        assert_eq!(out.output, vec![Value::Int(-10)]);
    }

    const FORK_JOIN_SRC: &str = r#"
native print/1
method main/0 {
  a = 1
  b = 2
  t1 = spawn work(a)
  t2 = spawn work(b)
  r1 = join t1
  r2 = join t2
  s = r1 + r2
  native print(s)
  return
}
method work/1 {
  i = 0
  one = 1
  lim = 40
loop:
  i = i + one
  if i < lim goto loop
  r = p0 * p0
  return r
}
"#;

    #[test]
    fn spawned_threads_run_and_joins_return_their_values() {
        let p = lowutil_ir::parse_program(FORK_JOIN_SRC).unwrap();
        let out = Vm::new(&p).run(&mut NullTracer).unwrap();
        assert_eq!(out.output, vec![Value::Int(5)]); // 1*1 + 2*2
    }

    /// The program synchronizes only through join edges, so every
    /// scheduler seed must produce the same output, the same totals,
    /// and the same per-tracer event count — only the interleaving
    /// (and hence the switch count) may differ.
    #[test]
    fn scheduler_seed_cannot_change_results_of_race_free_programs() {
        let p = lowutil_ir::parse_program(FORK_JOIN_SRC).unwrap();
        let mut base = CountingTracer::new();
        let out0 = Vm::new(&p).run(&mut base).unwrap();
        assert!(base.switches > 0, "fork/join must actually interleave");
        for seed in [1, 7, 0xDEAD_BEEF] {
            let mut t = CountingTracer::new();
            let out = Vm::with_config(
                &p,
                RunConfig {
                    sched_seed: seed,
                    ..RunConfig::default()
                },
            )
            .run(&mut t)
            .unwrap();
            assert_eq!(out.output, out0.output, "seed {seed}");
            assert_eq!(
                out.instructions_executed, out0.instructions_executed,
                "seed {seed}"
            );
            assert_eq!(out.objects_allocated, out0.objects_allocated);
            assert_eq!(t.instrs, base.instrs, "seed {seed}");
            assert_eq!((t.pushes, t.pops), (base.pushes, base.pops));
        }
    }

    #[test]
    fn single_threaded_runs_report_no_thread_switches() {
        let p = simple_loop_program(5);
        let mut t = CountingTracer::new();
        Vm::new(&p).run(&mut t).unwrap();
        assert_eq!(t.switches, 0);
    }

    /// The run ends only when *all* threads finish: a detached thread
    /// still completes (and prints) after main returns.
    #[test]
    fn detached_threads_finish_after_main_returns() {
        let src = r#"
native print/1
method main/0 {
  x = 7
  t = spawn shout(x)
  return
}
method shout/1 {
  native print(p0)
  return
}
"#;
        let p = lowutil_ir::parse_program(src).unwrap();
        let out = Vm::new(&p).run(&mut NullTracer).unwrap();
        assert_eq!(out.output, vec![Value::Int(7)]);
    }

    #[test]
    fn circular_joins_trap_as_deadlock() {
        let src = r#"
method main/0 {
  z = 0
  t = spawn waiter(z)
  r = join t
  return r
}
method waiter/1 {
  r = join p0
  return r
}
"#;
        let p = lowutil_ir::parse_program(src).unwrap();
        let e = Vm::new(&p).run(&mut NullTracer).unwrap_err();
        assert_eq!(e.kind, TrapKind::Deadlock);
    }

    #[test]
    fn bad_join_operands_trap() {
        let src = r#"
method main/0 {
  t = 99
  r = join t
  return
}
"#;
        let p = lowutil_ir::parse_program(src).unwrap();
        let e = Vm::new(&p).run(&mut NullTracer).unwrap_err();
        assert_eq!(e.kind, TrapKind::InvalidThreadHandle { handle: 99 });

        let src = r#"
method main/0 {
  t = null
  r = join t
  return
}
"#;
        let p = lowutil_ir::parse_program(src).unwrap();
        let e = Vm::new(&p).run(&mut NullTracer).unwrap_err();
        assert!(matches!(e.kind, TrapKind::TypeError { .. }));
    }

    #[test]
    fn instruction_budget_spans_all_threads() {
        let p = lowutil_ir::parse_program(FORK_JOIN_SRC).unwrap();
        let e = Vm::with_config(
            &p,
            RunConfig {
                max_instructions: 30,
                ..RunConfig::default()
            },
        )
        .run(&mut NullTracer)
        .unwrap_err();
        assert_eq!(e.kind, TrapKind::InstructionBudgetExceeded);
    }
}
