//! Compact binary execution traces: record once, analyze many times.
//!
//! A trace is a byte stream with three layers:
//!
//! * **Header** — magic `LUTR` plus a varint format version.
//! * **Segments** — the event stream, chopped into independently
//!   replayable chunks. Segment boundaries are only ever placed at
//!   *frame-push* records, and every segment opens with a **prologue**
//!   describing the live shadow-stack at that point (method, local count,
//!   a globally unique frame id, and the receiver object of each live
//!   frame, plus the phase flag). A consumer can therefore start mid-run:
//!   the prologue is exactly the state a shadow stack needs to be seeded
//!   with, which is what makes segment-parallel graph construction
//!   (`lowutil-par`) possible.
//! * **Trailer** — event/instruction/allocation/push/segment totals, so
//!   replay clients get the [`RunOutcome`](crate::RunOutcome)-level counts
//!   without re-deriving them.
//!
//! All integers are LEB128 varints (zigzag for signed); floats are stored
//! as their IEEE-754 bit pattern. The encoding is byte-exact: replaying a
//! trace produces the identical event sequence, in order, that the live
//! run produced, so any [`EventSink`] (including a full
//! profiler behind a [`TracerSink`](crate::TracerSink)) sees no
//! difference between live and recorded executions.
//!
//! # Format versions
//!
//! Traces cross machines and disks, so corrupt input is a tested,
//! recoverable condition rather than UB. Three wire versions exist:
//!
//! * **v1** (legacy, read-only by default) — segments are
//!   `tag, prologue-len, prologue, payload-len, payload` with no
//!   integrity protection; the trailer is four bare varints.
//! * **v2** — every record is length-framed and checksummed:
//!   `tag, body-len, body, crc32(body)`, where a segment body is
//!   `segment-index, prologue-len, prologue, payload-len, payload` and
//!   the trailer body adds a fifth varint carrying the segment count.
//!   The explicit index pins each segment to its position, so a spliced
//!   or reordered (but internally intact) segment is detected; the body
//!   length lets readers skip a corrupt segment structurally, which is
//!   what makes [`TraceReader::salvage`] able to count what it dropped.
//! * **v3** (current) — v2's framing, plus a thread-id varint opening
//!   every segment prologue. Segments are **per-thread**: the writer
//!   closes the current segment whenever the scheduler switches guest
//!   threads, so each segment's records all belong to the thread its
//!   prologue names, and the prologue's shadow stack is that thread's
//!   stack. Single-threaded recordings differ from v2 only in the
//!   header version and a zero thread-id varint per prologue.
//!
//! [`TraceReader::new`] negotiates the version from the header and reads
//! all three; [`TraceWriter`] writes v3 (v1 and v2 stay writable through
//! [`TraceWriter::with_format`] for compatibility fixtures, but latch an
//! error if the execution turns out to be multithreaded). All declared
//! lengths are validated against the remaining buffer *before* any
//! allocation, so a corrupt length yields a [`TraceError`], never an
//! over-allocation.

use crate::event::{Event, FrameInfo};
use crate::sink::EventSink;
use lowutil_ir::{
    AllocSiteId, CmpOp, FieldId, InstrId, Local, MethodId, NativeId, ObjectId, StaticId, ThreadId,
    Value,
};
use std::fmt;
use std::io::{self, Write};

/// The four magic bytes opening every trace.
pub const TRACE_MAGIC: [u8; 4] = *b"LUTR";
/// The trace format version this crate writes by default.
pub const TRACE_VERSION: u64 = 3;
/// The single-threaded checksummed format, still read and writable.
pub const TRACE_VERSION_V2: u64 = 2;
/// The legacy checksum-free format, still accepted by [`TraceReader`].
pub const TRACE_VERSION_V1: u64 = 1;

const TAG_SEGMENT: u8 = 0x01;
const TAG_TRAILER: u8 = 0x02;

/// Default maximum number of records per segment. Segments only split at
/// frame-push boundaries, so real segments may run longer than this.
pub const DEFAULT_SEGMENT_LIMIT: usize = 16 * 1024;

// Record opcodes. 0..=15 mirror the first sixteen `Event` variants in
// declaration order; 16/17 are the frame hooks; 18/19 are the thread
// events introduced with format v3.
const OP_COMPUTE: u8 = 0;
const OP_PREDICATE: u8 = 1;
const OP_ALLOC: u8 = 2;
const OP_LOAD_FIELD: u8 = 3;
const OP_STORE_FIELD: u8 = 4;
const OP_LOAD_STATIC: u8 = 5;
const OP_STORE_STATIC: u8 = 6;
const OP_ARRAY_LOAD: u8 = 7;
const OP_ARRAY_STORE: u8 = 8;
const OP_ARRAY_LEN: u8 = 9;
const OP_CALL: u8 = 10;
const OP_RETURN: u8 = 11;
const OP_CALL_COMPLETE: u8 = 12;
const OP_NATIVE: u8 = 13;
const OP_PHASE: u8 = 14;
const OP_JUMP: u8 = 15;
const OP_FRAME_PUSH: u8 = 16;
const OP_FRAME_POP: u8 = 17;
const OP_SPAWN: u8 = 18;
const OP_JOIN: u8 = 19;

/// A malformed or truncated trace.
#[derive(Debug, Clone)]
pub struct TraceError {
    /// Byte offset (within the parsed buffer) where decoding failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for TraceError {}

// ---------------------------------------------------------------------------
// crc32 (IEEE 802.3, reflected, poly 0xEDB88320)
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// Incremental CRC32: `update` over any number of slices, then `finish`.
#[derive(Debug, Clone, Copy)]
struct Crc32(u32);

impl Crc32 {
    fn new() -> Self {
        Crc32(0xFFFF_FFFF)
    }

    fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.0;
        for &b in bytes {
            crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
        }
        self.0 = crc;
    }

    fn finish(self) -> u32 {
        !self.0
    }
}

fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

// ---------------------------------------------------------------------------
// varint codec
// ---------------------------------------------------------------------------

/// LEB128 encode. Event streams are dominated by 1–2 byte varints
/// (opcode tags, register numbers, small deltas), so those two sizes
/// get straight-line paths — a compare and a fixed-size append, no
/// shift/test loop — and everything longer falls through to the
/// generic loop. All paths emit canonical LEB128, so the bytes are
/// identical whichever path runs (the v1 golden-trace test pins this).
#[inline]
fn put_u64(buf: &mut Vec<u8>, v: u64) {
    if v < 0x80 {
        buf.push(v as u8);
    } else if v < 0x4000 {
        buf.extend_from_slice(&[(v as u8 & 0x7f) | 0x80, (v >> 7) as u8]);
    } else {
        put_u64_long(buf, v);
    }
}

#[cold]
fn put_u64_long(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    put_u64(buf, u64::from(v));
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// A decoding cursor over a byte slice. `base` is the slice's offset in
/// the overall trace so error positions are absolute.
struct Cur<'a> {
    buf: &'a [u8],
    pos: usize,
    base: usize,
}

impl<'a> Cur<'a> {
    fn new(buf: &'a [u8], base: usize) -> Self {
        Cur { buf, pos: 0, base }
    }

    fn err(&self, message: impl Into<String>) -> TraceError {
        TraceError {
            offset: self.base + self.pos,
            message: message.into(),
        }
    }

    fn done(&self) -> bool {
        self.pos >= self.buf.len()
    }

    fn u8(&mut self) -> Result<u8, TraceError> {
        let b = *self
            .buf
            .get(self.pos)
            .ok_or_else(|| self.err("unexpected end of trace"))?;
        self.pos += 1;
        Ok(b)
    }

    /// LEB128 decode, with branchless-style fast paths for the 1- and
    /// 2-byte encodings that dominate event streams: peek up to two
    /// bytes, test their continuation bits, and combine with a shift-or
    /// — no loop state. Longer (or truncated) encodings fall through to
    /// the generic loop starting from scratch, so the error positions
    /// and overflow checks are exactly the loop's. Byte loads only: no
    /// alignment requirement, and the 7-bit groups compose little-endian
    /// (first byte is least significant) independent of host endianness.
    #[inline]
    fn u64(&mut self) -> Result<u64, TraceError> {
        if let Some(&b0) = self.buf.get(self.pos) {
            if b0 & 0x80 == 0 {
                self.pos += 1;
                return Ok(u64::from(b0));
            }
            if let Some(&b1) = self.buf.get(self.pos + 1) {
                if b1 & 0x80 == 0 {
                    self.pos += 2;
                    return Ok(u64::from(b0 & 0x7f) | u64::from(b1) << 7);
                }
            }
        }
        self.u64_long()
    }

    #[cold]
    fn u64_long(&mut self) -> Result<u64, TraceError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.u8()?;
            if shift >= 64 || (shift == 63 && b > 1) {
                return Err(self.err("varint overflows u64"));
            }
            v |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    fn u32(&mut self) -> Result<u32, TraceError> {
        let v = self.u64()?;
        u32::try_from(v).map_err(|_| self.err("varint overflows u32"))
    }

    fn u16(&mut self) -> Result<u16, TraceError> {
        let v = self.u64()?;
        u16::try_from(v).map_err(|_| self.err("varint overflows u16"))
    }

    fn bool(&mut self) -> Result<bool, TraceError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(self.err(format!("invalid bool byte {b}"))),
        }
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], TraceError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| self.err("length runs past end of trace"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// A raw (non-varint) little-endian u32 — the wire form of checksums.
    fn u32_raw(&mut self) -> Result<u32, TraceError> {
        let b = self.bytes(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a declared byte length and validates it against the bytes
    /// actually remaining, so corrupt lengths fail here — *before* any
    /// allocation or slicing is attempted.
    fn declared_len(&mut self, what: &str) -> Result<usize, TraceError> {
        let v = self.u64()?;
        let n = usize::try_from(v).map_err(|_| self.err(format!("{what} length overflows")))?;
        if n > self.remaining() {
            return Err(self.err(format!(
                "declared {what} length {n} exceeds {} remaining bytes",
                self.remaining()
            )));
        }
        Ok(n)
    }

    /// Reads a declared element count whose encoding needs at least
    /// `min_bytes` bytes per element; bounds any follow-up
    /// `Vec::with_capacity(count)` by the remaining buffer size.
    fn declared_count(&mut self, what: &str, min_bytes: usize) -> Result<usize, TraceError> {
        let v = self.u64()?;
        let n = usize::try_from(v).map_err(|_| self.err(format!("{what} count overflows")))?;
        if n.saturating_mul(min_bytes.max(1)) > self.remaining() {
            return Err(self.err(format!(
                "declared {what} count {n} cannot fit in {} remaining bytes",
                self.remaining()
            )));
        }
        Ok(n)
    }
}

/// Low-level varint entry points, exposed so the criterion benches can
/// measure the codec in isolation (not just end-to-end through the
/// trace writer/reader). Not part of the stable trace API.
pub mod wire {
    /// Appends `v` as canonical LEB128.
    #[inline]
    pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
        super::put_u64(buf, v);
    }

    /// Decodes one varint at `*pos`, advancing it. `None` on a
    /// truncated or overflowing encoding.
    #[inline]
    pub fn read_u64(buf: &[u8], pos: &mut usize) -> Option<u64> {
        let mut c = super::Cur::new(&buf[*pos..], 0);
        let v = c.u64().ok()?;
        *pos += c.pos;
        Some(v)
    }

    /// A decode cursor over a whole buffer — the same cursor the trace
    /// reader drives, so benches measure the codec at its real call
    /// shape (one cursor per segment, not one re-slice per value).
    pub struct Reader<'a> {
        cur: super::Cur<'a>,
    }

    impl<'a> Reader<'a> {
        /// A cursor positioned at the start of `buf`.
        pub fn new(buf: &'a [u8]) -> Self {
            Reader {
                cur: super::Cur::new(buf, 0),
            }
        }

        /// Decodes the next varint; `None` at end of input or on a
        /// truncated/overflowing encoding.
        #[inline]
        #[allow(clippy::should_implement_trait)]
        pub fn next(&mut self) -> Option<u64> {
            self.cur.u64().ok()
        }
    }
}

// ---------------------------------------------------------------------------
// field codecs
// ---------------------------------------------------------------------------

fn put_instr(buf: &mut Vec<u8>, at: InstrId) {
    put_u32(buf, at.method.0);
    put_u32(buf, at.pc);
}

fn get_instr(c: &mut Cur) -> Result<InstrId, TraceError> {
    let method = MethodId(c.u32()?);
    let pc = c.u32()?;
    Ok(InstrId::new(method, pc))
}

fn put_local(buf: &mut Vec<u8>, l: Local) {
    put_u32(buf, u32::from(l.0));
}

fn get_local(c: &mut Cur) -> Result<Local, TraceError> {
    Ok(Local(c.u16()?))
}

fn put_opt_local(buf: &mut Vec<u8>, l: Option<Local>) {
    match l {
        None => put_u32(buf, 0),
        Some(l) => put_u32(buf, u32::from(l.0) + 1),
    }
}

fn get_opt_local(c: &mut Cur) -> Result<Option<Local>, TraceError> {
    let v = c.u32()?;
    if v == 0 {
        return Ok(None);
    }
    let raw = u16::try_from(v - 1).map_err(|_| c.err("local index overflows u16"))?;
    Ok(Some(Local(raw)))
}

fn put_opt_object(buf: &mut Vec<u8>, o: Option<ObjectId>) {
    match o {
        None => put_u64(buf, 0),
        Some(o) => put_u64(buf, u64::from(o.0) + 1),
    }
}

fn get_opt_object(c: &mut Cur) -> Result<Option<ObjectId>, TraceError> {
    let v = c.u64()?;
    if v == 0 {
        return Ok(None);
    }
    let raw = u32::try_from(v - 1).map_err(|_| c.err("object id overflows u32"))?;
    Ok(Some(ObjectId(raw)))
}

const VAL_NULL: u8 = 0;
const VAL_INT: u8 = 1;
const VAL_FLOAT: u8 = 2;
const VAL_REF: u8 = 3;
const VAL_ABSENT: u8 = 4;

fn put_value(buf: &mut Vec<u8>, v: Value) {
    match v {
        Value::Null => buf.push(VAL_NULL),
        Value::Int(i) => {
            buf.push(VAL_INT);
            put_u64(buf, zigzag(i));
        }
        Value::Float(f) => {
            buf.push(VAL_FLOAT);
            put_u64(buf, f.to_bits());
        }
        Value::Ref(o) => {
            buf.push(VAL_REF);
            put_u32(buf, o.0);
        }
    }
}

fn get_value_tag(c: &mut Cur, tag: u8) -> Result<Value, TraceError> {
    match tag {
        VAL_NULL => Ok(Value::Null),
        VAL_INT => Ok(Value::Int(unzigzag(c.u64()?))),
        VAL_FLOAT => Ok(Value::Float(f64::from_bits(c.u64()?))),
        VAL_REF => Ok(Value::Ref(ObjectId(c.u32()?))),
        t => Err(c.err(format!("invalid value tag {t}"))),
    }
}

fn get_value(c: &mut Cur) -> Result<Value, TraceError> {
    let tag = c.u8()?;
    get_value_tag(c, tag)
}

fn put_opt_value(buf: &mut Vec<u8>, v: Option<Value>) {
    match v {
        None => buf.push(VAL_ABSENT),
        Some(v) => put_value(buf, v),
    }
}

fn get_opt_value(c: &mut Cur) -> Result<Option<Value>, TraceError> {
    let tag = c.u8()?;
    if tag == VAL_ABSENT {
        return Ok(None);
    }
    get_value_tag(c, tag).map(Some)
}

fn put_locals(buf: &mut Vec<u8>, ls: &[Local]) {
    put_u64(buf, ls.len() as u64);
    for &l in ls {
        put_local(buf, l);
    }
}

fn get_locals(c: &mut Cur) -> Result<Vec<Local>, TraceError> {
    // Each local is at least one byte on the wire, so a count exceeding
    // the remaining buffer is corrupt; checked before allocating.
    let n = c.declared_count("locals", 1)?;
    let mut v = Vec::with_capacity(n);
    for _ in 0..n {
        v.push(get_local(c)?);
    }
    Ok(v)
}

fn cmp_op_code(op: CmpOp) -> u8 {
    match op {
        CmpOp::Eq => 0,
        CmpOp::Ne => 1,
        CmpOp::Lt => 2,
        CmpOp::Le => 3,
        CmpOp::Gt => 4,
        CmpOp::Ge => 5,
    }
}

fn cmp_op_from(code: u8, c: &Cur) -> Result<CmpOp, TraceError> {
    Ok(match code {
        0 => CmpOp::Eq,
        1 => CmpOp::Ne,
        2 => CmpOp::Lt,
        3 => CmpOp::Le,
        4 => CmpOp::Gt,
        5 => CmpOp::Ge,
        _ => return Err(c.err(format!("invalid cmp op {code}"))),
    })
}

// ---------------------------------------------------------------------------
// record codecs
// ---------------------------------------------------------------------------

fn put_event(buf: &mut Vec<u8>, e: &Event) {
    match e {
        Event::Compute {
            at,
            dst,
            uses,
            value,
        } => {
            buf.push(OP_COMPUTE);
            put_instr(buf, *at);
            put_local(buf, *dst);
            put_opt_local(buf, uses[0]);
            put_opt_local(buf, uses[1]);
            put_value(buf, *value);
        }
        Event::Predicate {
            at,
            op,
            uses,
            taken,
        } => {
            buf.push(OP_PREDICATE);
            put_instr(buf, *at);
            buf.push(cmp_op_code(*op));
            put_local(buf, uses[0]);
            put_local(buf, uses[1]);
            buf.push(u8::from(*taken));
        }
        Event::Alloc {
            at,
            dst,
            object,
            site,
            len_use,
        } => {
            buf.push(OP_ALLOC);
            put_instr(buf, *at);
            put_local(buf, *dst);
            put_u32(buf, object.0);
            put_u32(buf, site.0);
            put_opt_local(buf, *len_use);
        }
        Event::LoadField {
            at,
            dst,
            base,
            object,
            field,
            offset,
            value,
        } => {
            buf.push(OP_LOAD_FIELD);
            put_instr(buf, *at);
            put_local(buf, *dst);
            put_local(buf, *base);
            put_u32(buf, object.0);
            put_u32(buf, field.0);
            put_u32(buf, *offset);
            put_value(buf, *value);
        }
        Event::StoreField {
            at,
            base,
            object,
            field,
            offset,
            src,
            value,
        } => {
            buf.push(OP_STORE_FIELD);
            put_instr(buf, *at);
            put_local(buf, *base);
            put_u32(buf, object.0);
            put_u32(buf, field.0);
            put_u32(buf, *offset);
            put_local(buf, *src);
            put_value(buf, *value);
        }
        Event::LoadStatic {
            at,
            dst,
            field,
            value,
        } => {
            buf.push(OP_LOAD_STATIC);
            put_instr(buf, *at);
            put_local(buf, *dst);
            put_u32(buf, field.0);
            put_value(buf, *value);
        }
        Event::StoreStatic {
            at,
            field,
            src,
            value,
        } => {
            buf.push(OP_STORE_STATIC);
            put_instr(buf, *at);
            put_u32(buf, field.0);
            put_local(buf, *src);
            put_value(buf, *value);
        }
        Event::ArrayLoad {
            at,
            dst,
            base,
            object,
            idx,
            index,
            value,
        } => {
            buf.push(OP_ARRAY_LOAD);
            put_instr(buf, *at);
            put_local(buf, *dst);
            put_local(buf, *base);
            put_u32(buf, object.0);
            put_local(buf, *idx);
            put_u32(buf, *index);
            put_value(buf, *value);
        }
        Event::ArrayStore {
            at,
            base,
            object,
            idx,
            index,
            src,
            value,
        } => {
            buf.push(OP_ARRAY_STORE);
            put_instr(buf, *at);
            put_local(buf, *base);
            put_u32(buf, object.0);
            put_local(buf, *idx);
            put_u32(buf, *index);
            put_local(buf, *src);
            put_value(buf, *value);
        }
        Event::ArrayLen {
            at,
            dst,
            base,
            object,
            value,
        } => {
            buf.push(OP_ARRAY_LEN);
            put_instr(buf, *at);
            put_local(buf, *dst);
            put_local(buf, *base);
            put_u32(buf, object.0);
            put_value(buf, *value);
        }
        Event::Call { at, callee, args } => {
            buf.push(OP_CALL);
            put_instr(buf, *at);
            put_u32(buf, callee.0);
            put_locals(buf, args);
        }
        Event::Return { at, src, value } => {
            buf.push(OP_RETURN);
            put_instr(buf, *at);
            put_opt_local(buf, *src);
            put_opt_value(buf, *value);
        }
        Event::CallComplete { at, dst, value } => {
            buf.push(OP_CALL_COMPLETE);
            put_instr(buf, *at);
            put_opt_local(buf, *dst);
            put_opt_value(buf, *value);
        }
        Event::Native {
            at,
            native,
            args,
            dst,
            value,
        } => {
            buf.push(OP_NATIVE);
            put_instr(buf, *at);
            put_u32(buf, native.0);
            put_locals(buf, args);
            put_opt_local(buf, *dst);
            put_opt_value(buf, *value);
        }
        Event::Phase { at, begin } => {
            buf.push(OP_PHASE);
            put_instr(buf, *at);
            buf.push(u8::from(*begin));
        }
        Event::Jump { at } => {
            buf.push(OP_JUMP);
            put_instr(buf, *at);
        }
        Event::Spawn {
            at,
            dst,
            thread,
            callee,
            args,
        } => {
            buf.push(OP_SPAWN);
            put_instr(buf, *at);
            put_local(buf, *dst);
            put_u32(buf, thread.0);
            put_u32(buf, callee.0);
            put_locals(buf, args);
        }
        Event::Join {
            at,
            dst,
            thread,
            value,
        } => {
            buf.push(OP_JOIN);
            put_instr(buf, *at);
            put_opt_local(buf, *dst);
            put_u32(buf, thread.0);
            put_opt_value(buf, *value);
        }
    }
}

fn get_event(c: &mut Cur, op: u8) -> Result<Event, TraceError> {
    Ok(match op {
        OP_COMPUTE => Event::Compute {
            at: get_instr(c)?,
            dst: get_local(c)?,
            uses: [get_opt_local(c)?, get_opt_local(c)?],
            value: get_value(c)?,
        },
        OP_PREDICATE => {
            let at = get_instr(c)?;
            let code = c.u8()?;
            Event::Predicate {
                at,
                op: cmp_op_from(code, c)?,
                uses: [get_local(c)?, get_local(c)?],
                taken: c.bool()?,
            }
        }
        OP_ALLOC => Event::Alloc {
            at: get_instr(c)?,
            dst: get_local(c)?,
            object: ObjectId(c.u32()?),
            site: AllocSiteId(c.u32()?),
            len_use: get_opt_local(c)?,
        },
        OP_LOAD_FIELD => Event::LoadField {
            at: get_instr(c)?,
            dst: get_local(c)?,
            base: get_local(c)?,
            object: ObjectId(c.u32()?),
            field: FieldId(c.u32()?),
            offset: c.u32()?,
            value: get_value(c)?,
        },
        OP_STORE_FIELD => Event::StoreField {
            at: get_instr(c)?,
            base: get_local(c)?,
            object: ObjectId(c.u32()?),
            field: FieldId(c.u32()?),
            offset: c.u32()?,
            src: get_local(c)?,
            value: get_value(c)?,
        },
        OP_LOAD_STATIC => Event::LoadStatic {
            at: get_instr(c)?,
            dst: get_local(c)?,
            field: StaticId(c.u32()?),
            value: get_value(c)?,
        },
        OP_STORE_STATIC => Event::StoreStatic {
            at: get_instr(c)?,
            field: StaticId(c.u32()?),
            src: get_local(c)?,
            value: get_value(c)?,
        },
        OP_ARRAY_LOAD => Event::ArrayLoad {
            at: get_instr(c)?,
            dst: get_local(c)?,
            base: get_local(c)?,
            object: ObjectId(c.u32()?),
            idx: get_local(c)?,
            index: c.u32()?,
            value: get_value(c)?,
        },
        OP_ARRAY_STORE => Event::ArrayStore {
            at: get_instr(c)?,
            base: get_local(c)?,
            object: ObjectId(c.u32()?),
            idx: get_local(c)?,
            index: c.u32()?,
            src: get_local(c)?,
            value: get_value(c)?,
        },
        OP_ARRAY_LEN => Event::ArrayLen {
            at: get_instr(c)?,
            dst: get_local(c)?,
            base: get_local(c)?,
            object: ObjectId(c.u32()?),
            value: get_value(c)?,
        },
        OP_CALL => Event::Call {
            at: get_instr(c)?,
            callee: MethodId(c.u32()?),
            args: get_locals(c)?,
        },
        OP_RETURN => Event::Return {
            at: get_instr(c)?,
            src: get_opt_local(c)?,
            value: get_opt_value(c)?,
        },
        OP_CALL_COMPLETE => Event::CallComplete {
            at: get_instr(c)?,
            dst: get_opt_local(c)?,
            value: get_opt_value(c)?,
        },
        OP_NATIVE => Event::Native {
            at: get_instr(c)?,
            native: NativeId(c.u32()?),
            args: get_locals(c)?,
            dst: get_opt_local(c)?,
            value: get_opt_value(c)?,
        },
        OP_PHASE => Event::Phase {
            at: get_instr(c)?,
            begin: c.bool()?,
        },
        OP_JUMP => Event::Jump { at: get_instr(c)? },
        OP_SPAWN => Event::Spawn {
            at: get_instr(c)?,
            dst: get_local(c)?,
            thread: ThreadId(c.u32()?),
            callee: MethodId(c.u32()?),
            args: get_locals(c)?,
        },
        OP_JOIN => Event::Join {
            at: get_instr(c)?,
            dst: get_opt_local(c)?,
            thread: ThreadId(c.u32()?),
            value: get_opt_value(c)?,
        },
        _ => return Err(c.err(format!("invalid record opcode {op}"))),
    })
}

fn put_frame_info(buf: &mut Vec<u8>, info: &FrameInfo) {
    put_u32(buf, info.method.0);
    match info.call_site {
        None => buf.push(0),
        Some(at) => {
            buf.push(1);
            put_instr(buf, at);
        }
    }
    put_u64(buf, u64::from(info.num_params));
    put_u64(buf, u64::from(info.num_locals));
    put_opt_object(buf, info.receiver);
    put_u64(buf, u64::from(info.num_args));
}

fn get_frame_info(c: &mut Cur) -> Result<FrameInfo, TraceError> {
    let method = MethodId(c.u32()?);
    let call_site = match c.u8()? {
        0 => None,
        1 => Some(get_instr(c)?),
        b => return Err(c.err(format!("invalid call-site tag {b}"))),
    };
    Ok(FrameInfo {
        method,
        call_site,
        num_params: c.u16()?,
        num_locals: c.u16()?,
        receiver: get_opt_object(c)?,
        num_args: c.u16()?,
    })
}

// ---------------------------------------------------------------------------
// writer
// ---------------------------------------------------------------------------

/// Totals reported by [`TraceWriter::finish`], mirroring the trailer.
#[derive(Debug, Clone, Copy, Default)]
pub struct TraceStats {
    /// Instruction events recorded (including `CallComplete`).
    pub events: u64,
    /// Executed instructions (events excluding `CallComplete`), matching
    /// [`RunOutcome::instructions_executed`](crate::RunOutcome).
    pub instructions: u64,
    /// Objects allocated.
    pub objects_allocated: u64,
    /// Frame pushes recorded.
    pub frame_pushes: u64,
    /// Number of segments written.
    pub segments: u64,
    /// Total bytes written, including header and trailer.
    pub bytes: u64,
}

/// A live frame as the writer tracks it for prologue capture.
#[derive(Debug, Clone, Copy)]
struct WriterFrame {
    method: MethodId,
    num_locals: u16,
    /// Global frame id: the index of this frame's push among all pushes.
    gid: u64,
    receiver: Option<ObjectId>,
}

/// An [`EventSink`] that serializes the stream to a [`Write`] target.
///
/// Attach it to a live run via [`SinkTracer`](crate::SinkTracer) —
/// optionally tupled with a profiler so one execution both profiles and
/// records — then call [`TraceWriter::finish`] to flush the final segment
/// and trailer. I/O errors are deferred: the sink hooks are infallible,
/// so a failed write latches the error and `finish` reports it.
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    out: W,
    started: bool,
    io_error: Option<io::Error>,
    /// Wire format version being written ([`TRACE_VERSION`] by default).
    version: u64,
    /// Prologue captured at the current segment's start.
    prologue: Vec<u8>,
    /// Encoded records of the current segment.
    seg: Vec<u8>,
    seg_records: usize,
    segment_limit: usize,
    /// Per-thread shadow-stack mirrors, indexed by thread id. Frame gids
    /// stay globally unique: `push_count` counts pushes across all
    /// threads.
    frames: Vec<Vec<WriterFrame>>,
    /// The thread whose records the current segment holds.
    cur_thread: usize,
    push_count: u64,
    in_phase: bool,
    stats: TraceStats,
}

impl<W: Write> TraceWriter<W> {
    /// Creates a writer with the [`DEFAULT_SEGMENT_LIMIT`].
    pub fn new(out: W) -> Self {
        Self::with_segment_limit(out, DEFAULT_SEGMENT_LIMIT)
    }

    /// Creates a writer that targets `limit` records per segment. Smaller
    /// limits produce more (and more parallelizable) segments at the cost
    /// of prologue overhead; tests use tiny limits to force segmentation
    /// on small programs.
    pub fn with_segment_limit(out: W, limit: usize) -> Self {
        Self::with_format(out, limit, TRACE_VERSION)
    }

    /// Creates a writer emitting a specific wire version —
    /// [`TRACE_VERSION`], [`TRACE_VERSION_V2`], or [`TRACE_VERSION_V1`].
    /// The legacy paths exist so compatibility fixtures (and their
    /// no-drift tests) can regenerate old traces; new recordings should
    /// use [`TraceWriter::new`]. Legacy formats cannot represent thread
    /// switches or thread events: recording a multithreaded execution
    /// through them latches an error that [`TraceWriter::finish`]
    /// reports.
    ///
    /// # Panics
    /// Panics if `version` is not a version this crate can write.
    pub fn with_format(out: W, limit: usize, version: u64) -> Self {
        assert!(
            version == TRACE_VERSION || version == TRACE_VERSION_V2 || version == TRACE_VERSION_V1,
            "unwritable trace version {version}"
        );
        let mut w = TraceWriter {
            out,
            started: false,
            io_error: None,
            version,
            prologue: Vec::new(),
            seg: Vec::new(),
            seg_records: 0,
            segment_limit: limit.max(1),
            frames: vec![Vec::new()],
            cur_thread: 0,
            push_count: 0,
            in_phase: false,
            stats: TraceStats::default(),
        };
        w.capture_prologue();
        w
    }

    /// Encodes the current thread's shadow-stack state as the prologue of
    /// the segment that starts *now*.
    fn capture_prologue(&mut self) {
        self.prologue.clear();
        if self.version == TRACE_VERSION {
            put_u64(&mut self.prologue, self.cur_thread as u64);
        }
        let frames = &self.frames[self.cur_thread];
        put_u64(&mut self.prologue, frames.len() as u64);
        for f in frames {
            put_u32(&mut self.prologue, f.method.0);
            put_u64(&mut self.prologue, u64::from(f.num_locals));
            put_u64(&mut self.prologue, f.gid);
            put_opt_object(&mut self.prologue, f.receiver);
        }
        self.prologue.push(u8::from(self.in_phase));
        put_u64(&mut self.prologue, self.push_count);
    }

    /// Latches an "unrepresentable in this format" error so `finish`
    /// reports it; the sink hooks themselves stay infallible.
    fn latch_unsupported(&mut self, what: &str) {
        if self.io_error.is_none() {
            self.io_error = Some(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("trace format v{} cannot record {what}", self.version),
            ));
        }
    }

    fn write_all(&mut self, bytes: &[u8]) {
        if self.io_error.is_some() {
            return;
        }
        if let Err(e) = self.out.write_all(bytes) {
            self.io_error = Some(e);
            return;
        }
        self.stats.bytes += bytes.len() as u64;
    }

    /// Writes the current segment (prologue + payload) and begins a new
    /// one whose prologue reflects the state as of now.
    fn flush_segment(&mut self) {
        if !self.started {
            self.started = true;
            let mut header = Vec::with_capacity(8);
            header.extend_from_slice(&TRACE_MAGIC);
            put_u64(&mut header, self.version);
            self.write_all(&header);
        }
        if self.version == TRACE_VERSION_V1 {
            // Legacy framing: no index, no length envelope, no checksum.
            let mut framing = Vec::with_capacity(16);
            framing.push(TAG_SEGMENT);
            put_u64(&mut framing, self.prologue.len() as u64);
            self.write_all(&framing);
            let prologue = std::mem::take(&mut self.prologue);
            self.write_all(&prologue);
            let mut len = Vec::with_capacity(8);
            put_u64(&mut len, self.seg.len() as u64);
            self.write_all(&len);
            let seg = std::mem::take(&mut self.seg);
            self.write_all(&seg);
        } else {
            // v2 body: index, prologue-len, prologue, payload-len, payload;
            // CRC over the body, streamed part by part to avoid a copy.
            let mut head = Vec::with_capacity(16);
            put_u64(&mut head, self.stats.segments);
            put_u64(&mut head, self.prologue.len() as u64);
            let mut mid = Vec::with_capacity(8);
            put_u64(&mut mid, self.seg.len() as u64);
            let body_len = head.len() + self.prologue.len() + mid.len() + self.seg.len();
            let mut crc = Crc32::new();
            crc.update(&head);
            crc.update(&self.prologue);
            crc.update(&mid);
            crc.update(&self.seg);
            let mut framing = Vec::with_capacity(16);
            framing.push(TAG_SEGMENT);
            put_u64(&mut framing, body_len as u64);
            self.write_all(&framing);
            self.write_all(&head);
            let prologue = std::mem::take(&mut self.prologue);
            self.write_all(&prologue);
            self.write_all(&mid);
            let seg = std::mem::take(&mut self.seg);
            self.write_all(&seg);
            self.write_all(&crc.finish().to_le_bytes());
        }
        self.stats.segments += 1;
        self.seg_records = 0;
        self.capture_prologue();
    }

    /// Flushes the final segment, writes the trailer, and returns the
    /// underlying writer together with the totals. Reports any I/O error
    /// encountered during the run.
    pub fn finish(mut self) -> io::Result<(W, TraceStats)> {
        if !self.seg.is_empty() || self.stats.segments == 0 {
            self.flush_segment();
        }
        if self.version == TRACE_VERSION_V1 {
            let mut trailer = Vec::with_capacity(24);
            trailer.push(TAG_TRAILER);
            put_u64(&mut trailer, self.stats.events);
            put_u64(&mut trailer, self.stats.instructions);
            put_u64(&mut trailer, self.stats.objects_allocated);
            put_u64(&mut trailer, self.stats.frame_pushes);
            self.write_all(&trailer);
        } else {
            let mut body = Vec::with_capacity(40);
            put_u64(&mut body, self.stats.events);
            put_u64(&mut body, self.stats.instructions);
            put_u64(&mut body, self.stats.objects_allocated);
            put_u64(&mut body, self.stats.frame_pushes);
            put_u64(&mut body, self.stats.segments);
            let mut framing = Vec::with_capacity(8);
            framing.push(TAG_TRAILER);
            put_u64(&mut framing, body.len() as u64);
            self.write_all(&framing);
            self.write_all(&body);
            self.write_all(&crc32(&body).to_le_bytes());
        }
        if self.io_error.is_none() {
            if let Err(e) = self.out.flush() {
                self.io_error = Some(e);
            }
        }
        match self.io_error {
            Some(e) => Err(e),
            None => Ok((self.out, self.stats)),
        }
    }
}

impl<W: Write> EventSink for TraceWriter<W> {
    fn event(&mut self, event: &Event) {
        match event {
            Event::Phase { begin, .. } => self.in_phase = *begin,
            Event::Alloc { .. } => self.stats.objects_allocated += 1,
            Event::Spawn { .. } | Event::Join { .. } if self.version != TRACE_VERSION => {
                self.latch_unsupported("thread events");
                return;
            }
            _ => {}
        }
        self.stats.events += 1;
        if !matches!(event, Event::CallComplete { .. }) {
            self.stats.instructions += 1;
        }
        put_event(&mut self.seg, event);
        self.seg_records += 1;
    }

    fn frame_push(&mut self, info: &FrameInfo) {
        // Segments may only split here: flushing *before* encoding the
        // push guarantees every non-first segment begins with a
        // frame-push record, so a replay shard always enters a frame it
        // saw being created.
        if self.seg_records >= self.segment_limit {
            self.flush_segment();
        }
        self.frames[self.cur_thread].push(WriterFrame {
            method: info.method,
            num_locals: info.num_locals,
            gid: self.push_count,
            receiver: info.receiver,
        });
        self.push_count += 1;
        self.stats.frame_pushes += 1;
        self.seg.push(OP_FRAME_PUSH);
        put_frame_info(&mut self.seg, info);
        self.seg_records += 1;
    }

    fn frame_pop(&mut self) {
        self.frames[self.cur_thread].pop();
        self.seg.push(OP_FRAME_POP);
        self.seg_records += 1;
    }

    fn thread(&mut self, tid: ThreadId) {
        if self.version != TRACE_VERSION {
            self.latch_unsupported("thread switches");
            return;
        }
        if tid.index() == self.cur_thread {
            return;
        }
        // Segments are per-thread: close the departing thread's segment
        // (if it holds anything) and open one owned by `tid`, whose
        // prologue carries that thread's shadow stack.
        if self.seg_records > 0 {
            self.flush_segment();
        }
        self.cur_thread = tid.index();
        if self.frames.len() <= self.cur_thread {
            self.frames.resize_with(self.cur_thread + 1, Vec::new);
        }
        self.capture_prologue();
    }
}

// ---------------------------------------------------------------------------
// reader
// ---------------------------------------------------------------------------

/// One live frame described by a segment prologue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrologueFrame {
    /// The frame's method.
    pub method: MethodId,
    /// Total local slots in the frame.
    pub num_locals: u16,
    /// Global frame id (index of its push among all pushes in the run).
    pub gid: u64,
    /// The receiver object the frame was entered with, if any. Consumers
    /// reconstruct the object-sensitive context chain from these.
    pub receiver: Option<ObjectId>,
}

/// The shadow-stack state at a segment boundary.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Prologue {
    /// The guest thread this segment's records belong to. Always
    /// [`ThreadId::MAIN`] for v1/v2 traces, whose executions are
    /// single-threaded by construction.
    pub thread: ThreadId,
    /// Live frames of that thread, outermost first.
    pub frames: Vec<PrologueFrame>,
    /// Whether execution was inside a `phase_begin`/`phase_end` window.
    pub in_phase: bool,
    /// The global frame id the segment's first in-segment push receives.
    pub first_gid: u64,
}

/// Run totals recorded in the trace trailer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Trailer {
    /// Instruction events (including `CallComplete`).
    pub events: u64,
    /// Executed instructions, matching
    /// [`RunOutcome::instructions_executed`](crate::RunOutcome).
    pub instructions: u64,
    /// Objects allocated during the run.
    pub objects_allocated: u64,
    /// Total frame pushes.
    pub frame_pushes: u64,
    /// Number of segments in the trace. Recorded on the wire by v2; for
    /// v1 traces the reader fills it in from the parsed segment count.
    pub segments: u64,
}

/// One independently replayable chunk of the trace.
#[derive(Debug, Clone)]
pub struct Segment<'a> {
    prologue: Prologue,
    payload: &'a [u8],
    /// Absolute offset of the payload in the trace, for error reporting.
    payload_offset: usize,
}

impl<'a> Segment<'a> {
    /// The shadow-stack state this segment starts from.
    pub fn prologue(&self) -> &Prologue {
        &self.prologue
    }

    /// The segment's raw event payload — what a checksum protects, and
    /// what prefix-identity tests compare byte-for-byte.
    pub fn payload(&self) -> &'a [u8] {
        self.payload
    }

    /// Replays the segment's records into `sink`, in recorded order.
    pub fn replay<S: EventSink>(&self, sink: &mut S) -> Result<(), TraceError> {
        let mut c = Cur::new(self.payload, self.payload_offset);
        while !c.done() {
            let op = c.u8()?;
            match op {
                OP_FRAME_PUSH => {
                    let info = get_frame_info(&mut c)?;
                    sink.frame_push(&info);
                }
                OP_FRAME_POP => sink.frame_pop(),
                _ => {
                    let e = get_event(&mut c, op)?;
                    sink.event(&e);
                }
            }
        }
        Ok(())
    }
}

/// Decodes a segment prologue from its carved-out byte range. Only v3
/// prologues open with a thread id; earlier formats are implicitly
/// [`ThreadId::MAIN`].
fn decode_prologue(pbytes: &[u8], base: usize, version: u64) -> Result<Prologue, TraceError> {
    let mut pc = Cur::new(pbytes, base);
    let thread = if version == TRACE_VERSION {
        ThreadId(pc.u32()?)
    } else {
        ThreadId::MAIN
    };
    // Each encoded frame needs at least 4 bytes (method, locals, gid,
    // receiver), so the depth is bounded before the Vec is sized.
    let depth = pc.declared_count("prologue frame", 4)?;
    let mut frames = Vec::with_capacity(depth);
    for _ in 0..depth {
        frames.push(PrologueFrame {
            method: MethodId(pc.u32()?),
            num_locals: pc.u16()?,
            gid: pc.u64()?,
            receiver: get_opt_object(&mut pc)?,
        });
    }
    let in_phase = pc.bool()?;
    let first_gid = pc.u64()?;
    if !pc.done() {
        return Err(pc.err("trailing bytes in segment prologue"));
    }
    Ok(Prologue {
        thread,
        frames,
        in_phase,
        first_gid,
    })
}

/// Carves a segment's prologue and payload ranges off `c`, then decodes
/// the prologue. Shared by the v1, v2, and v3 record parsers.
fn parse_segment_body<'a>(c: &mut Cur<'a>, version: u64) -> Result<Segment<'a>, TraceError> {
    let plen = c.declared_len("segment prologue")?;
    let pstart = c.base + c.pos;
    let pbytes = c.bytes(plen)?;
    let len = c.declared_len("segment payload")?;
    let payload_offset = c.base + c.pos;
    let payload = c.bytes(len)?;
    Ok(Segment {
        prologue: decode_prologue(pbytes, pstart, version)?,
        payload,
        payload_offset,
    })
}

/// One parsed top-level record. The `Corrupt*` variants mean the record's
/// *extent* was recovered (scanning can continue past it) but its content
/// failed validation — a checksum mismatch or an undecodable body.
enum Record<'a> {
    Segment {
        /// The segment's self-declared position (v2 only).
        index: Option<u64>,
        seg: Segment<'a>,
    },
    CorruptSegment {
        error: TraceError,
    },
    Trailer(Trailer),
    CorruptTrailer {
        error: TraceError,
    },
}

/// Parses the next top-level record. `Err` means framing-level corruption
/// (bad tag, bad length, truncation): the scan cannot continue past it.
fn next_record<'a>(c: &mut Cur<'a>, version: u64) -> Result<Record<'a>, TraceError> {
    let tag = c.u8()?;
    if version == TRACE_VERSION_V1 {
        return match tag {
            TAG_SEGMENT => {
                // v1 has no envelope: the prologue/payload lengths *are*
                // the framing, so a decode failure inside the carved
                // ranges is still skippable.
                let plen = c.declared_len("segment prologue")?;
                let pstart = c.base + c.pos;
                let pbytes = c.bytes(plen)?;
                let len = c.declared_len("segment payload")?;
                let payload_offset = c.base + c.pos;
                let payload = c.bytes(len)?;
                match decode_prologue(pbytes, pstart, version) {
                    Ok(prologue) => Ok(Record::Segment {
                        index: None,
                        seg: Segment {
                            prologue,
                            payload,
                            payload_offset,
                        },
                    }),
                    Err(error) => Ok(Record::CorruptSegment { error }),
                }
            }
            TAG_TRAILER => Ok(Record::Trailer(Trailer {
                events: c.u64()?,
                instructions: c.u64()?,
                objects_allocated: c.u64()?,
                frame_pushes: c.u64()?,
                segments: 0, // filled in by the caller for v1
            })),
            t => Err(c.err(format!("invalid frame tag {t}"))),
        };
    }
    match tag {
        TAG_SEGMENT => {
            let blen = c.declared_len("segment body")?;
            let bstart = c.base + c.pos;
            let body = c.bytes(blen)?;
            let stored = c.u32_raw()?;
            if crc32(body) != stored {
                return Ok(Record::CorruptSegment {
                    error: TraceError {
                        offset: bstart,
                        message: "segment checksum mismatch".to_string(),
                    },
                });
            }
            let mut bc = Cur::new(body, bstart);
            let parsed = (|| {
                let index = bc.u64()?;
                let seg = parse_segment_body(&mut bc, version)?;
                if !bc.done() {
                    return Err(bc.err("trailing bytes in segment body"));
                }
                Ok((index, seg))
            })();
            match parsed {
                Ok((index, seg)) => Ok(Record::Segment {
                    index: Some(index),
                    seg,
                }),
                Err(error) => Ok(Record::CorruptSegment { error }),
            }
        }
        TAG_TRAILER => {
            let blen = c.declared_len("trailer body")?;
            let bstart = c.base + c.pos;
            let body = c.bytes(blen)?;
            let stored = c.u32_raw()?;
            if crc32(body) != stored {
                return Ok(Record::CorruptTrailer {
                    error: TraceError {
                        offset: bstart,
                        message: "trailer checksum mismatch".to_string(),
                    },
                });
            }
            let mut bc = Cur::new(body, bstart);
            let parsed = (|| {
                let t = Trailer {
                    events: bc.u64()?,
                    instructions: bc.u64()?,
                    objects_allocated: bc.u64()?,
                    frame_pushes: bc.u64()?,
                    segments: bc.u64()?,
                };
                if !bc.done() {
                    return Err(bc.err("trailing bytes in trailer body"));
                }
                Ok(t)
            })();
            match parsed {
                Ok(t) => Ok(Record::Trailer(t)),
                Err(error) => Ok(Record::CorruptTrailer { error }),
            }
        }
        t => Err(c.err(format!("invalid frame tag {t}"))),
    }
}

/// Parses the `LUTR` magic and version, rejecting versions this crate
/// cannot read.
fn parse_header(c: &mut Cur) -> Result<u64, TraceError> {
    let magic = c.bytes(4)?;
    if magic != TRACE_MAGIC {
        return Err(TraceError {
            offset: 0,
            message: "not a lowutil trace (bad magic)".to_string(),
        });
    }
    let version = c.u64()?;
    if version != TRACE_VERSION && version != TRACE_VERSION_V2 && version != TRACE_VERSION_V1 {
        return Err(c.err(format!(
            "unsupported trace version {version} (this reader handles {TRACE_VERSION_V1} through {TRACE_VERSION})"
        )));
    }
    Ok(version)
}

/// Counts a replayed stream the way the writer counts it, so a trailer
/// can be synthesized for a salvaged prefix.
#[derive(Debug, Clone, Copy, Default)]
struct PrefixCounts {
    events: u64,
    instructions: u64,
    objects_allocated: u64,
    frame_pushes: u64,
}

impl PrefixCounts {
    fn trailer(&self, segments: u64) -> Trailer {
        Trailer {
            events: self.events,
            instructions: self.instructions,
            objects_allocated: self.objects_allocated,
            frame_pushes: self.frame_pushes,
            segments,
        }
    }
}

impl EventSink for PrefixCounts {
    fn event(&mut self, event: &Event) {
        self.events += 1;
        if !matches!(event, Event::CallComplete { .. }) {
            self.instructions += 1;
        }
        if matches!(event, Event::Alloc { .. }) {
            self.objects_allocated += 1;
        }
    }

    fn frame_push(&mut self, _info: &FrameInfo) {
        self.frame_pushes += 1;
    }
}

/// What [`TraceReader::salvage`] recovered and what it had to give up.
#[derive(Debug, Clone, Default)]
pub struct SalvageStats {
    /// Checksum-valid, decodable segments kept (always a prefix of the
    /// original recording, in order).
    pub segments_kept: usize,
    /// Segments whose extent was recovered but which were dropped — the
    /// corrupt segment itself plus any structurally scannable segments
    /// after it (prefix semantics: nothing after the first failure is
    /// replayed). Segments lost to framing-level corruption cannot be
    /// counted and are covered by `bytes_dropped` instead.
    pub segments_dropped: usize,
    /// Bytes not represented by the kept segments (from the first
    /// failure to end of buffer). Zero for a clean trace.
    pub bytes_dropped: usize,
    /// Whether the file's own trailer record was found intact. The
    /// salvaged reader's trailer is always synthesized from the kept
    /// prefix so it matches what `replay` will actually deliver.
    pub trailer_recovered: bool,
    /// The first validation or framing error encountered, if any.
    pub first_error: Option<TraceError>,
}

impl SalvageStats {
    /// True when the whole trace was intact (nothing dropped).
    pub fn is_clean(&self) -> bool {
        self.first_error.is_none()
    }

    /// One-line human summary for warnings.
    pub fn summary(&self) -> String {
        match &self.first_error {
            None => format!("trace intact ({} segments)", self.segments_kept),
            Some(e) => format!(
                "kept {} segments, dropped {} segments / {} bytes (trailer {}): {}",
                self.segments_kept,
                self.segments_dropped,
                self.bytes_dropped,
                if self.trailer_recovered {
                    "recovered"
                } else {
                    "lost"
                },
                e
            ),
        }
    }

    fn note(&mut self, e: TraceError) {
        if self.first_error.is_none() {
            self.first_error = Some(e);
        }
    }
}

/// A parsed in-memory trace. Parsing decodes segment framing and
/// prologues eagerly (they are tiny) but leaves record payloads as byte
/// slices, so handing segments to parallel workers costs nothing.
#[derive(Debug)]
pub struct TraceReader<'a> {
    version: u64,
    segments: Vec<Segment<'a>>,
    trailer: Trailer,
}

impl<'a> TraceReader<'a> {
    /// Parses a trace buffer, negotiating the format version from the
    /// header (v1 and v2 both replay). Fails on bad magic, unknown
    /// version, truncation, a checksum mismatch, an out-of-sequence
    /// segment, or a missing trailer.
    pub fn new(buf: &'a [u8]) -> Result<Self, TraceError> {
        let mut c = Cur::new(buf, 0);
        let version = parse_header(&mut c)?;
        let mut segments = Vec::new();
        loop {
            match next_record(&mut c, version)? {
                Record::Segment { index, seg } => {
                    if let Some(i) = index {
                        if i != segments.len() as u64 {
                            return Err(TraceError {
                                offset: seg.payload_offset,
                                message: format!(
                                    "segment declares index {i} but is at position {}",
                                    segments.len()
                                ),
                            });
                        }
                    }
                    segments.push(seg);
                }
                Record::CorruptSegment { error } | Record::CorruptTrailer { error } => {
                    return Err(error)
                }
                Record::Trailer(mut trailer) => {
                    if version == TRACE_VERSION_V1 {
                        trailer.segments = segments.len() as u64;
                    } else if trailer.segments != segments.len() as u64 {
                        return Err(c.err(format!(
                            "trailer records {} segments but {} were present",
                            trailer.segments,
                            segments.len()
                        )));
                    }
                    if !c.done() {
                        return Err(c.err("trailing bytes after trace trailer"));
                    }
                    return Ok(TraceReader {
                        version,
                        segments,
                        trailer,
                    });
                }
            }
        }
    }

    /// Recovers the longest replayable prefix of a damaged trace.
    ///
    /// Keeps segments from the front as long as each one is
    /// checksum-valid (v2), in sequence, and fully decodable; the first
    /// failure ends the kept prefix, and everything after it — even
    /// segments that would validate — is dropped, so the result is always
    /// a true prefix of the original recording. The returned reader's
    /// trailer is synthesized from the kept prefix, so totals agree with
    /// what [`TraceReader::replay`] will deliver, and every kept segment
    /// is guaranteed to replay without error.
    ///
    /// # Errors
    /// Fails only when the header itself is unusable (bad magic or an
    /// unknown version) — there is nothing to salvage without knowing the
    /// format.
    pub fn salvage(buf: &'a [u8]) -> Result<(Self, SalvageStats), TraceError> {
        let mut c = Cur::new(buf, 0);
        let version = parse_header(&mut c)?;
        let mut segments: Vec<Segment<'a>> = Vec::new();
        let mut stats = SalvageStats::default();
        let mut counts = PrefixCounts::default();
        let mut kept_end = c.pos;
        let mut file_trailer: Option<Trailer> = None;
        loop {
            if c.done() {
                if file_trailer.is_none() {
                    stats.note(c.err("trace ends without a trailer"));
                }
                break;
            }
            match next_record(&mut c, version) {
                Ok(Record::Segment { index, seg }) => {
                    if stats.first_error.is_some() {
                        stats.segments_dropped += 1;
                        continue;
                    }
                    if index.is_some_and(|i| i != segments.len() as u64) {
                        stats.note(TraceError {
                            offset: seg.payload_offset,
                            message: format!(
                                "segment declares index {} but is at position {}",
                                index.unwrap_or_default(),
                                segments.len()
                            ),
                        });
                        stats.segments_dropped += 1;
                        continue;
                    }
                    // Trial-decode so a kept segment can never fail a
                    // later replay, and so the prefix totals are known.
                    match seg.replay(&mut counts) {
                        Ok(()) => {
                            segments.push(seg);
                            stats.segments_kept += 1;
                            kept_end = c.pos;
                        }
                        Err(e) => {
                            stats.note(e);
                            stats.segments_dropped += 1;
                        }
                    }
                }
                Ok(Record::CorruptSegment { error }) => {
                    stats.note(error);
                    stats.segments_dropped += 1;
                }
                Ok(Record::Trailer(t)) => {
                    file_trailer = Some(t);
                    if !c.done() {
                        stats.note(c.err("trailing bytes after trace trailer"));
                    }
                    break;
                }
                Ok(Record::CorruptTrailer { error }) => {
                    stats.note(error);
                    break;
                }
                Err(e) => {
                    // Framing-level corruption: the scan cannot continue.
                    stats.note(e);
                    break;
                }
            }
        }
        let trailer = counts.trailer(segments.len() as u64);
        stats.trailer_recovered = file_trailer.is_some();
        if let Some(t) = file_trailer {
            // A structurally clean trace whose trailer disagrees with its
            // own contents is still damaged — surface that.
            if stats.first_error.is_none() && t != trailer {
                stats.note(TraceError {
                    offset: kept_end,
                    message: "trailer totals disagree with segment contents".to_string(),
                });
            }
        }
        stats.bytes_dropped = if stats.first_error.is_some() {
            buf.len().saturating_sub(kept_end)
        } else {
            0
        };
        Ok((
            TraceReader {
                version,
                segments,
                trailer,
            },
            stats,
        ))
    }

    /// The wire format version the trace was recorded with.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The trace's segments, in execution order.
    pub fn segments(&self) -> &[Segment<'a>] {
        &self.segments
    }

    /// The run totals from the trailer.
    pub fn trailer(&self) -> &Trailer {
        &self.trailer
    }

    /// Replays the entire trace into `sink`, segment by segment,
    /// announcing thread switches between segments exactly as the live
    /// run announced them: only when the owning thread actually changes
    /// (so segments split by the record limit inside one thread's run
    /// add no `thread` calls, and single-threaded traces add none at
    /// all).
    pub fn replay<S: EventSink>(&self, sink: &mut S) -> Result<(), TraceError> {
        let mut cur = ThreadId::MAIN;
        for seg in &self.segments {
            let t = seg.prologue().thread;
            if t != cur {
                sink.thread(t);
                cur = t;
            }
            seg.replay(sink)?;
        }
        Ok(())
    }
}

/// Default cap on a single framed record's body for [`StreamingReader`]:
/// far above anything the writer emits at sane segment limits, far below
/// what a hostile length prefix could otherwise make the buffer hold.
pub const DEFAULT_STREAM_RECORD_LIMIT: usize = 64 << 20;

/// How far a varint extends in a partial buffer, without decoding it.
enum VarintExtent {
    /// The encoding continues past the buffered bytes.
    NeedMore,
    /// The encoding occupies this many bytes (decoding may still reject
    /// it as an overflow — a 10-byte run of continuation bits is carried
    /// to the decoder so the error position matches the batch reader's).
    Len(usize),
}

/// Scans the extent of one varint starting at `bytes[at..]`. Canonical
/// LEB128 u64 never needs more than 10 bytes, and [`Cur::u64_long`]
/// rejects a 10th continuation byte outright, so 10 buffered bytes are
/// always enough to either decode or deterministically fail.
fn varint_extent(bytes: &[u8], at: usize) -> VarintExtent {
    for i in 0..10 {
        match bytes.get(at + i) {
            None => return VarintExtent::NeedMore,
            Some(b) if b & 0x80 == 0 => return VarintExtent::Len(i + 1),
            Some(_) => {}
        }
    }
    VarintExtent::Len(10)
}

/// An incremental trace reader for network/spool ingest: bytes arrive in
/// arbitrary chunks via [`feed`](StreamingReader::feed), and every record
/// that completes is validated and replayed into the caller's sink
/// immediately, so a long-lived consumer (a graph builder) never holds
/// more than one framed record of lookahead.
///
/// The contract mirrors the batch paths exactly:
///
/// - A stream that completes cleanly (trailer present, totals matching)
///   has replayed the identical event sequence [`TraceReader::replay`]
///   would deliver — thread switches announced only on change.
/// - A stream that is cut or corrupted mid-flight has replayed exactly
///   the segments [`TraceReader::salvage`] would keep: each segment is
///   trial-decoded in full before any of it reaches the sink, so the
///   sink observes the longest valid prefix and nothing else.
///
/// Errors are sticky: after the first failure every further `feed` and
/// [`finish`](StreamingReader::finish) returns the same error, and the
/// sink sees no more events. Only framed formats stream (v2/v3); v1 has
/// no checksums, so mid-flight validation is impossible and the header
/// is rejected up front.
#[derive(Debug)]
pub struct StreamingReader {
    buf: Vec<u8>,
    /// Index of the first unconsumed byte in `buf`.
    start: usize,
    /// Absolute stream offset of `buf[0]`, so errors report positions in
    /// the whole stream no matter how the chunks arrived.
    base: usize,
    /// Negotiated wire version; `None` until the header has parsed.
    version: Option<u64>,
    segments_seen: u64,
    counts: PrefixCounts,
    cur_thread: ThreadId,
    trailer: Option<Trailer>,
    error: Option<TraceError>,
    record_limit: usize,
}

impl Default for StreamingReader {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamingReader {
    /// A reader with the default per-record cap
    /// ([`DEFAULT_STREAM_RECORD_LIMIT`]).
    pub fn new() -> Self {
        Self::with_record_limit(DEFAULT_STREAM_RECORD_LIMIT)
    }

    /// A reader rejecting any framed record whose declared body exceeds
    /// `limit` bytes. This bounds the reader's buffering: memory use is
    /// `O(limit + largest feed chunk)` regardless of stream length.
    pub fn with_record_limit(limit: usize) -> Self {
        StreamingReader {
            buf: Vec::new(),
            start: 0,
            base: 0,
            version: None,
            segments_seen: 0,
            counts: PrefixCounts::default(),
            cur_thread: ThreadId::MAIN,
            trailer: None,
            error: None,
            record_limit: limit.max(1),
        }
    }

    /// Appends a chunk of stream bytes and replays every record that is
    /// now complete into `sink`. Chunk boundaries are arbitrary — a
    /// record split across any number of chunks replays exactly once,
    /// when its last byte arrives.
    pub fn feed<S: EventSink>(&mut self, bytes: &[u8], sink: &mut S) -> Result<(), TraceError> {
        if let Some(e) = &self.error {
            return Err(e.clone());
        }
        self.buf.extend_from_slice(bytes);
        self.drain(sink)
    }

    /// Declares end-of-stream. Succeeds only when the stream completed
    /// cleanly: header, in-sequence segments, a trailer whose totals
    /// match the replayed contents, and no bytes after it.
    pub fn finish(&mut self) -> Result<Trailer, TraceError> {
        if let Some(e) = &self.error {
            return Err(e.clone());
        }
        match &self.trailer {
            Some(t) => Ok(*t),
            None => {
                let e = TraceError {
                    offset: self.base + self.buf.len(),
                    message: "stream ends without a trailer".to_string(),
                };
                Err(self.fail(e))
            }
        }
    }

    /// The negotiated wire version, once the header has parsed.
    pub fn version(&self) -> Option<u64> {
        self.version
    }

    /// Segments fully validated and replayed so far.
    pub fn segments_seen(&self) -> u64 {
        self.segments_seen
    }

    /// Running totals of what the sink has received, in trailer form —
    /// exactly the trailer [`TraceReader::salvage`] would synthesize for
    /// the prefix delivered so far.
    pub fn progress(&self) -> Trailer {
        self.counts.trailer(self.segments_seen)
    }

    /// The stream's own trailer, once received and verified.
    pub fn trailer(&self) -> Option<&Trailer> {
        self.trailer.as_ref()
    }

    /// The sticky error, if the stream has failed.
    pub fn error(&self) -> Option<&TraceError> {
        self.error.as_ref()
    }

    /// True once the trailer has arrived and verified: the sink holds
    /// the complete stream.
    pub fn is_complete(&self) -> bool {
        self.trailer.is_some() && self.error.is_none()
    }

    /// Bytes buffered awaiting a record's completion (back-pressure
    /// signal: bounded by the record limit plus one feed chunk).
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    fn fail(&mut self, e: TraceError) -> TraceError {
        if self.error.is_none() {
            self.error = Some(e.clone());
        }
        e
    }

    /// Consumes `n` bytes off the front of the pending buffer,
    /// compacting once the dead prefix is worth reclaiming.
    fn consume(&mut self, n: usize) {
        self.start += n;
        if self.start >= self.buf.len() || self.start >= 64 * 1024 {
            self.base += self.start;
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }

    fn drain<S: EventSink>(&mut self, sink: &mut S) -> Result<(), TraceError> {
        loop {
            let avail = &self.buf[self.start..];
            let at = self.base + self.start;
            let version = match self.version {
                Some(v) => v,
                None => {
                    // Header: 4 magic bytes then the version varint.
                    if avail.len() < TRACE_MAGIC.len() {
                        return Ok(());
                    }
                    let vlen = match varint_extent(avail, TRACE_MAGIC.len()) {
                        VarintExtent::NeedMore => return Ok(()),
                        VarintExtent::Len(n) => n,
                    };
                    let hlen = TRACE_MAGIC.len() + vlen;
                    let mut c = Cur::new(&avail[..hlen], at);
                    let v = match parse_header(&mut c) {
                        Ok(v) => v,
                        Err(e) => return Err(self.fail(e)),
                    };
                    if v == TRACE_VERSION_V1 {
                        let e = TraceError {
                            offset: at,
                            message: format!(
                                "streaming ingest requires a framed trace \
                                 (v{TRACE_VERSION_V2}+); v{TRACE_VERSION_V1} has no checksums"
                            ),
                        };
                        return Err(self.fail(e));
                    }
                    self.version = Some(v);
                    self.consume(hlen);
                    continue;
                }
            };
            if avail.is_empty() {
                return Ok(());
            }
            if self.trailer.is_some() {
                let e = TraceError {
                    offset: at,
                    message: "trailing bytes after trace trailer".to_string(),
                };
                return Err(self.fail(e));
            }
            // Frame envelope: tag, body-len varint, body, raw CRC32.
            let tag = avail[0];
            if tag != TAG_SEGMENT && tag != TAG_TRAILER {
                let e = TraceError {
                    offset: at + 1,
                    message: format!("invalid frame tag {tag}"),
                };
                return Err(self.fail(e));
            }
            let vlen = match varint_extent(avail, 1) {
                VarintExtent::NeedMore => return Ok(()),
                VarintExtent::Len(n) => n,
            };
            let mut lc = Cur::new(&avail[..1 + vlen], at);
            lc.pos = 1;
            let blen = match lc.u64() {
                Ok(v) => v,
                Err(e) => return Err(self.fail(e)),
            };
            if blen > self.record_limit as u64 {
                let e = TraceError {
                    offset: at + 1,
                    message: format!(
                        "framed record declares {blen} bytes, over the \
                         streaming record limit of {}",
                        self.record_limit
                    ),
                };
                return Err(self.fail(e));
            }
            let total = 1 + vlen + blen as usize + 4;
            if avail.len() < total {
                return Ok(());
            }
            let mut c = Cur::new(&avail[..total], at);
            let record = match next_record(&mut c, version) {
                Ok(r) => r,
                Err(e) => return Err(self.fail(e)),
            };
            match record {
                Record::Segment { index, seg } => {
                    if index.is_some_and(|i| i != self.segments_seen) {
                        let e = TraceError {
                            offset: seg.payload_offset,
                            message: format!(
                                "segment declares index {} but is at position {}",
                                index.unwrap_or_default(),
                                self.segments_seen
                            ),
                        };
                        return Err(self.fail(e));
                    }
                    // Trial-decode the whole segment before any of it
                    // reaches the sink: a partially decodable segment
                    // must contribute nothing, exactly like salvage.
                    let mut scratch = PrefixCounts::default();
                    if let Err(e) = seg.replay(&mut scratch) {
                        return Err(self.fail(e));
                    }
                    let t = seg.prologue().thread;
                    if t != self.cur_thread {
                        sink.thread(t);
                        self.cur_thread = t;
                    }
                    if let Err(e) = seg.replay(sink) {
                        // Unreachable after a clean trial decode, but a
                        // sticky error beats a wrong graph.
                        return Err(self.fail(e));
                    }
                    self.counts.events += scratch.events;
                    self.counts.instructions += scratch.instructions;
                    self.counts.objects_allocated += scratch.objects_allocated;
                    self.counts.frame_pushes += scratch.frame_pushes;
                    self.segments_seen += 1;
                }
                Record::CorruptSegment { error } | Record::CorruptTrailer { error } => {
                    return Err(self.fail(error));
                }
                Record::Trailer(t) => {
                    if t != self.counts.trailer(self.segments_seen) {
                        let e = TraceError {
                            offset: at,
                            message: "trailer totals disagree with segment contents".to_string(),
                        };
                        return Err(self.fail(e));
                    }
                    self.trailer = Some(t);
                }
            }
            self.consume(total);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{CountingSink, SinkTracer};
    use crate::tracer::Tracer;
    use crate::Vm;
    use lowutil_ir::{BinOp, Program, ProgramBuilder};

    #[test]
    fn varint_roundtrip() {
        let mut buf = Vec::new();
        let values = [0u64, 1, 127, 128, 300, 16383, 16384, u64::MAX];
        for &v in &values {
            put_u64(&mut buf, v);
        }
        let mut c = Cur::new(&buf, 0);
        for &v in &values {
            assert_eq!(c.u64().unwrap(), v);
        }
        assert!(c.done());
        for v in [0i64, 1, -1, 63, -64, i64::MIN, i64::MAX] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    /// The 1/2-byte encode fast paths emit exactly the generic loop's
    /// bytes at every size boundary, and a truncated continuation byte
    /// still errors instead of being mis-decoded by the peek.
    #[test]
    fn varint_fast_paths_match_the_generic_loop() {
        for &v in &[
            0u64,
            1,
            0x7f,
            0x80,
            0x3fff,
            0x4000,
            u64::from(u32::MAX),
            u64::MAX,
        ] {
            let mut fast = Vec::new();
            put_u64(&mut fast, v);
            let mut long = Vec::new();
            put_u64_long(&mut long, v);
            assert_eq!(fast, long, "encoding diverged at {v}");
            let mut pos = 0;
            assert_eq!(wire::read_u64(&fast, &mut pos), Some(v));
            assert_eq!(pos, fast.len());
        }
        assert!(Cur::new(&[0x80], 0).u64().is_err(), "truncated 2-byte");
        assert!(Cur::new(&[], 0).u64().is_err(), "empty input");
    }

    /// A program exercising every event kind: heap, arrays, statics,
    /// calls, predicates, natives, and phases.
    fn kitchen_sink_program() -> Program {
        let mut pb = ProgramBuilder::new();
        let print = pb.native("print", 1, false);
        let begin = pb.native("phase_begin", 0, false);
        let end = pb.native("phase_end", 0, false);
        let cls = pb.class("C").finish(&mut pb);
        let f = pb.field(cls, "f");
        let s = pb.static_field("S");

        let mut twice = pb.method("twice", 1);
        let p0 = twice.param(0);
        let r = twice.new_local("r");
        twice.binop(r, BinOp::Add, p0, p0);
        twice.ret(r);
        let twice_id = twice.finish(&mut pb);

        let mut m = pb.method("main", 0);
        let x = m.new_local("x");
        let y = m.new_local("y");
        let obj = m.new_local("obj");
        let arr = m.new_local("arr");
        let len = m.new_local("len");
        let i = m.new_local("i");
        m.call_native_void(begin, &[]);
        m.iconst(x, 21);
        m.call(Some(y), twice_id, &[x]);
        m.new_obj(obj, cls);
        m.put_field(obj, f, y);
        m.get_field(x, obj, f);
        m.put_static(s, x);
        m.get_static(y, s);
        m.iconst(len, 3);
        m.new_array(arr, len);
        m.iconst(i, 0);
        let loop_top = m.label();
        m.bind(loop_top);
        m.array_put(arr, i, y);
        m.array_get(x, arr, i);
        m.iconst(y, 1);
        m.binop(i, BinOp::Add, i, y);
        m.iconst(y, 3);
        m.branch(lowutil_ir::CmpOp::Lt, i, y, loop_top);
        m.array_len(len, arr);
        m.call_native_void(end, &[]);
        m.call_native_void(print, &[len]);
        m.ret_void();
        let main_id = m.finish(&mut pb);
        pb.finish(main_id).expect("valid program")
    }

    /// A loop making `n` calls: segments split only at frame pushes, so
    /// a small segment limit yields roughly `n` segments — the shape the
    /// salvage tests need.
    fn call_heavy_program(n: i64) -> Program {
        let mut pb = ProgramBuilder::new();
        let print = pb.native("print", 1, false);

        let mut twice = pb.method("twice", 1);
        let p0 = twice.param(0);
        let r = twice.new_local("r");
        twice.binop(r, BinOp::Add, p0, p0);
        twice.ret(r);
        let twice_id = twice.finish(&mut pb);

        let mut m = pb.method("main", 0);
        let i = m.new_local("i");
        let one = m.new_local("one");
        let lim = m.new_local("lim");
        let acc = m.new_local("acc");
        let t = m.new_local("t");
        m.iconst(i, 0);
        m.iconst(one, 1);
        m.iconst(lim, n);
        m.iconst(acc, 0);
        let top = m.label();
        m.bind(top);
        m.call(Some(t), twice_id, &[i]);
        m.binop(acc, BinOp::Add, acc, t);
        m.binop(i, BinOp::Add, i, one);
        m.branch(lowutil_ir::CmpOp::Lt, i, lim, top);
        m.call_native_void(print, &[acc]);
        m.ret_void();
        let main_id = m.finish(&mut pb);
        pb.finish(main_id).expect("valid program")
    }

    /// Collects a Debug rendering of the full stream for comparison
    /// (Event does not implement PartialEq).
    #[derive(Default)]
    struct StreamLog(Vec<String>);

    impl EventSink for StreamLog {
        fn event(&mut self, e: &Event) {
            self.0.push(format!("{e:?}"));
        }

        fn frame_push(&mut self, info: &FrameInfo) {
            self.0.push(format!("push {info:?}"));
        }

        fn frame_pop(&mut self) {
            self.0.push("pop".to_string());
        }

        fn thread(&mut self, tid: ThreadId) {
            self.0.push(format!("thread {tid}"));
        }
    }

    impl Tracer for StreamLog {
        fn instr(&mut self, e: &Event) {
            EventSink::event(self, e);
        }

        fn frame_push(&mut self, info: &FrameInfo) {
            EventSink::frame_push(self, info);
        }

        fn frame_pop(&mut self) {
            EventSink::frame_pop(self);
        }

        fn thread(&mut self, tid: ThreadId) {
            EventSink::thread(self, tid);
        }
    }

    fn record(program: &Program, limit: usize) -> (Vec<u8>, TraceStats, crate::RunOutcome) {
        let writer = TraceWriter::with_segment_limit(Vec::new(), limit);
        let mut t = SinkTracer(writer);
        let out = Vm::new(program).run(&mut t).expect("program runs");
        let (bytes, stats) = t.0.finish().expect("in-memory write cannot fail");
        (bytes, stats, out)
    }

    #[test]
    fn record_replay_reproduces_the_exact_stream() {
        let program = kitchen_sink_program();
        let mut live = StreamLog::default();
        let out_live = Vm::new(&program).run(&mut live).expect("program runs");
        let (bytes, stats, out_rec) = record(&program, DEFAULT_SEGMENT_LIMIT);
        assert_eq!(
            out_live.instructions_executed,
            out_rec.instructions_executed
        );

        let reader = TraceReader::new(&bytes).expect("trace parses");
        let mut replayed = StreamLog::default();
        reader.replay(&mut replayed).expect("trace replays");
        assert_eq!(live.0, replayed.0);

        let trailer = reader.trailer();
        assert_eq!(trailer.instructions, out_rec.instructions_executed);
        assert_eq!(trailer.objects_allocated, out_rec.objects_allocated as u64);
        assert_eq!(stats.instructions, trailer.instructions);
        assert_eq!(stats.events, trailer.events);
    }

    #[test]
    fn tiny_segment_limit_splits_at_frame_pushes_only() {
        let program = kitchen_sink_program();
        let (big, ..) = record(&program, DEFAULT_SEGMENT_LIMIT);
        let (small, stats, _) = record(&program, 4);
        assert!(stats.segments > 1, "limit 4 must force segmentation");

        let rb = TraceReader::new(&big).expect("trace parses");
        let rs = TraceReader::new(&small).expect("trace parses");
        assert_eq!(rb.segments().len(), 1);
        assert_eq!(rs.segments().len() as u64, stats.segments);

        // Identical replayed stream regardless of segmentation.
        let (mut a, mut b) = (StreamLog::default(), StreamLog::default());
        rb.replay(&mut a).unwrap();
        rs.replay(&mut b).unwrap();
        assert_eq!(a.0, b.0);

        // Every non-first segment begins with a frame push, and its
        // prologue is consistent: the first in-segment push gets
        // `first_gid`, which grows monotonically.
        let mut prev_first = 0;
        for (i, seg) in rs.segments().iter().enumerate() {
            if i > 0 {
                assert_eq!(seg.payload[0], OP_FRAME_PUSH);
                assert!(seg.prologue().first_gid >= prev_first);
                assert!(!seg.prologue().frames.is_empty());
                for w in seg.prologue().frames.windows(2) {
                    assert!(w[0].gid < w[1].gid, "frame gids increase inward");
                }
            }
            prev_first = seg.prologue().first_gid;
        }
    }

    #[test]
    fn counting_sink_matches_trailer() {
        let program = kitchen_sink_program();
        let (bytes, ..) = record(&program, 8);
        let reader = TraceReader::new(&bytes).unwrap();
        let mut count = CountingSink::new();
        reader.replay(&mut count).unwrap();
        assert_eq!(count.events, reader.trailer().events);
        assert_eq!(count.pushes, reader.trailer().frame_pushes);
        assert_eq!(count.pushes, count.pops);
    }

    #[test]
    fn malformed_traces_are_rejected() {
        assert!(TraceReader::new(b"").is_err());
        assert!(TraceReader::new(b"NOPE").is_err());
        assert!(TraceReader::new(b"LUTR\x63").is_err()); // bad version
        let program = kitchen_sink_program();
        let (bytes, ..) = record(&program, DEFAULT_SEGMENT_LIMIT);
        // Truncations anywhere must error, never panic.
        for cut in 0..bytes.len() {
            assert!(TraceReader::new(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn v1_traces_still_replay_through_the_v2_reader() {
        let program = kitchen_sink_program();
        let (v2, stats2, _) = record(&program, 8);
        let writer = TraceWriter::with_format(Vec::new(), 8, TRACE_VERSION_V1);
        let mut t = SinkTracer(writer);
        Vm::new(&program).run(&mut t).expect("program runs");
        let (v1, stats1) = t.0.finish().expect("in-memory write cannot fail");
        assert!(v1.len() < v2.len(), "v1 lacks indices and checksums");
        assert_eq!(stats1.segments, stats2.segments);

        let r1 = TraceReader::new(&v1).expect("v1 parses");
        let r2 = TraceReader::new(&v2).expect("v2 parses");
        assert_eq!(r1.version(), TRACE_VERSION_V1);
        assert_eq!(r2.version(), TRACE_VERSION);
        assert_eq!(r1.trailer(), r2.trailer());
        assert_eq!(r1.trailer().segments, r1.segments().len() as u64);
        let (mut a, mut b) = (StreamLog::default(), StreamLog::default());
        r1.replay(&mut a).unwrap();
        r2.replay(&mut b).unwrap();
        assert_eq!(a.0, b.0, "identical stream across wire versions");
    }

    /// Every single-bit flip anywhere in a v2 trace must be rejected by
    /// the full parse: CRC32 detects all 1-bit errors in record bodies,
    /// and flips in the header, tags, lengths, or stored checksums break
    /// framing or verification.
    #[test]
    fn v2_parse_rejects_every_single_bit_flip() {
        let program = kitchen_sink_program();
        let (bytes, ..) = record(&program, 8);
        for bit in 0..bytes.len() * 8 {
            let mut m = bytes.clone();
            m[bit / 8] ^= 1 << (bit % 8);
            assert!(
                TraceReader::new(&m).is_err(),
                "flip of bit {bit} went undetected"
            );
        }
    }

    #[test]
    fn salvage_of_truncations_keeps_a_replayable_prefix() {
        let program = call_heavy_program(12);
        let (bytes, stats, _) = record(&program, 4);
        assert!(stats.segments > 2);
        let full = TraceReader::new(&bytes).unwrap();
        let mut live = StreamLog::default();
        full.replay(&mut live).unwrap();

        for cut in 0..bytes.len() {
            let (reader, st) = match TraceReader::salvage(&bytes[..cut]) {
                Ok(r) => r,
                // Cuts inside the header leave nothing to salvage.
                Err(_) => continue,
            };
            assert!(!st.is_clean(), "cut at {cut} must not look clean");
            // A cut exactly at a record boundary drops whole records and
            // zero partial bytes; anywhere else leaves a damaged tail.
            assert!(st.bytes_dropped <= cut);
            assert!(st.segments_kept <= full.segments().len());
            let mut replayed = StreamLog::default();
            reader.replay(&mut replayed).unwrap();
            assert!(
                replayed.0.len() <= live.0.len() && live.0[..replayed.0.len()] == replayed.0[..],
                "cut at {cut}: salvaged stream is not a prefix of the live stream"
            );
            // The synthesized trailer matches the kept prefix.
            assert_eq!(reader.trailer().segments, st.segments_kept as u64);
            let mut count = CountingSink::new();
            reader.replay(&mut count).unwrap();
            assert_eq!(count.events, reader.trailer().events);
            assert_eq!(count.pushes, reader.trailer().frame_pushes);
        }
        // A clean trace salvages to itself.
        let (reader, st) = TraceReader::salvage(&bytes).unwrap();
        assert!(st.is_clean());
        assert!(st.trailer_recovered);
        assert_eq!(st.segments_kept, full.segments().len());
        assert_eq!(st.bytes_dropped, 0);
        assert_eq!(reader.trailer(), full.trailer());
    }

    #[test]
    fn salvage_of_bit_flips_drops_from_the_damaged_segment_on() {
        let program = call_heavy_program(12);
        let (bytes, stats, _) = record(&program, 4);
        let total = stats.segments as usize;
        for bit in (0..bytes.len() * 8).step_by(41) {
            let mut m = bytes.clone();
            m[bit / 8] ^= 1 << (bit % 8);
            let Ok((reader, st)) = TraceReader::salvage(&m) else {
                continue; // header flip: nothing to salvage
            };
            assert!(!st.is_clean(), "flip of bit {bit} must not look clean");
            // A flip in the trailer region keeps every segment; anywhere
            // else it ends the kept prefix early.
            assert!(st.segments_kept <= total);
            // Whatever was kept replays cleanly and matches the
            // synthesized trailer.
            let mut count = CountingSink::new();
            reader.replay(&mut count).unwrap();
            assert_eq!(count.events, reader.trailer().events);
        }
    }

    /// A spliced-in duplicate of another segment is internally intact
    /// (its checksum matches) but self-declares the wrong index, so both
    /// the strict parse and salvage refuse to treat it as segment k.
    #[test]
    fn duplicated_segment_records_are_rejected_by_index() {
        let program = call_heavy_program(6);
        let (bytes, stats, _) = record(&program, 4);
        assert!(stats.segments >= 2);
        // Recover the record boundaries with a raw scan.
        let mut c = Cur::new(&bytes, 0);
        parse_header(&mut c).unwrap();
        let first_record_start = c.pos;
        assert_eq!(c.u8().unwrap(), TAG_SEGMENT);
        let blen = c.declared_len("body").unwrap();
        c.bytes(blen).unwrap();
        c.u32_raw().unwrap();
        let first_record_end = c.pos;

        // header + seg0 + seg0 + rest: the duplicate claims index 0 at
        // position 1.
        let mut spliced = bytes[..first_record_end].to_vec();
        spliced.extend_from_slice(&bytes[first_record_start..]);
        assert!(TraceReader::new(&spliced).is_err());
        let (reader, st) = TraceReader::salvage(&spliced).unwrap();
        assert_eq!(st.segments_kept, 1);
        assert!(!st.is_clean());
        assert!(st
            .first_error
            .as_ref()
            .is_some_and(|e| e.message.contains("index")));
        let mut count = CountingSink::new();
        reader.replay(&mut count).unwrap();
    }

    /// A writer whose target runs out of space latches the error and
    /// reports it from `finish` instead of panicking mid-run.
    #[derive(Debug)]
    struct FailingWriter {
        written: usize,
        cap: usize,
    }

    impl Write for FailingWriter {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.written + buf.len() > self.cap {
                return Err(io::Error::new(io::ErrorKind::StorageFull, "disk full"));
            }
            self.written += buf.len();
            Ok(buf.len())
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn disk_full_is_reported_by_finish_not_a_panic() {
        let program = kitchen_sink_program();
        // Small caps fail mid-run; larger ones fail at the trailer. All
        // must surface the error at finish() without panicking.
        for cap in [0, 10, 100, 300] {
            let writer = TraceWriter::with_segment_limit(FailingWriter { written: 0, cap }, 4);
            let mut t = SinkTracer(writer);
            Vm::new(&program).run(&mut t).expect("program runs");
            let err = t.0.finish().expect_err("write must fail");
            assert_eq!(err.kind(), io::ErrorKind::StorageFull, "cap {cap}");
        }
        // And a cap with headroom succeeds outright.
        let writer = TraceWriter::with_segment_limit(
            FailingWriter {
                written: 0,
                cap: 1 << 20,
            },
            4,
        );
        let mut t = SinkTracer(writer);
        Vm::new(&program).run(&mut t).expect("program runs");
        t.0.finish().expect("roomy write succeeds");
    }

    /// Corrupt declared lengths and counts are rejected against the
    /// remaining buffer before anything is allocated or sliced.
    #[test]
    fn huge_declared_lengths_are_rejected_before_allocation() {
        // A locals list claiming u32::MAX entries in a 3-byte buffer.
        let mut buf = Vec::new();
        put_u64(&mut buf, u64::from(u32::MAX));
        buf.push(0);
        let mut c = Cur::new(&buf, 0);
        let err = get_locals(&mut c).expect_err("count must be rejected");
        assert!(err.message.contains("count"), "{}", err.message);

        // A prologue claiming an absurd frame depth.
        let mut p = Vec::new();
        put_u64(&mut p, u64::MAX / 2);
        let err = decode_prologue(&p, 0, TRACE_VERSION_V2).expect_err("depth must be rejected");
        assert!(err.message.contains("count"), "{}", err.message);

        // A segment record declaring a body far past end-of-file.
        let mut t = Vec::new();
        t.extend_from_slice(&TRACE_MAGIC);
        put_u64(&mut t, TRACE_VERSION);
        t.push(TAG_SEGMENT);
        put_u64(&mut t, u64::MAX);
        let err = TraceReader::new(&t).expect_err("body length must be rejected");
        assert!(
            err.message.contains("length") || err.message.contains("overflows"),
            "{}",
            err.message
        );
    }

    /// A fork/join workload that interleaves three guest threads, with
    /// enough calls in each that small segment limits also split within
    /// a thread's run.
    fn fork_join_program() -> Program {
        lowutil_ir::parse_program(
            r#"
native print/1
method main/0 {
  a = 3
  b = 4
  t1 = spawn work(a)
  t2 = spawn work(b)
  r1 = join t1
  r2 = join t2
  s = r1 + r2
  native print(s)
  return
}
method work/1 {
  i = 0
  one = 1
  lim = 8
  acc = 0
loop:
  acc = call twice(i)
  i = i + one
  if i < lim goto loop
  r = p0 + acc
  return r
}
method twice/1 {
  r = p0 + p0
  return r
}
"#,
        )
        .expect("valid program")
    }

    /// A multithreaded run records to v3 and replays the exact live
    /// stream — thread switch announcements included — and every
    /// segment's prologue names the thread whose records it holds.
    #[test]
    fn multithreaded_record_replay_reproduces_the_exact_stream() {
        let program = fork_join_program();
        for limit in [DEFAULT_SEGMENT_LIMIT, 4] {
            let mut live = StreamLog::default();
            Vm::new(&program).run(&mut live).expect("program runs");
            assert!(
                live.0.iter().any(|l| l.starts_with("thread ")),
                "run must interleave"
            );

            let (bytes, stats, out) = record(&program, limit);
            let reader = TraceReader::new(&bytes).expect("trace parses");
            assert_eq!(reader.version(), TRACE_VERSION);
            let mut replayed = StreamLog::default();
            reader.replay(&mut replayed).expect("trace replays");
            assert_eq!(live.0, replayed.0, "limit {limit}");
            assert_eq!(reader.trailer().instructions, out.instructions_executed);
            assert_eq!(stats.segments, reader.segments().len() as u64);

            let threads: std::collections::BTreeSet<ThreadId> = reader
                .segments()
                .iter()
                .map(|s| s.prologue().thread)
                .collect();
            assert!(threads.len() >= 3, "main + two workers");
            // Segment boundaries still split only at frame pushes
            // *within* a thread: a non-first segment either opens with a
            // push or belongs to a different thread than its predecessor.
            for w in reader.segments().windows(2) {
                if w[1].prologue().thread == w[0].prologue().thread {
                    assert_eq!(w[1].payload()[0], OP_FRAME_PUSH);
                }
            }
        }
    }

    /// Multithreaded v3 traces survive the corruption batteries: every
    /// single-bit flip is rejected by the strict parse, and salvage of a
    /// truncation keeps a replayable prefix.
    #[test]
    fn multithreaded_traces_survive_corruption_batteries() {
        let program = fork_join_program();
        let (bytes, stats, _) = record(&program, 4);
        assert!(stats.segments > 3);
        for bit in (0..bytes.len() * 8).step_by(17) {
            let mut m = bytes.clone();
            m[bit / 8] ^= 1 << (bit % 8);
            assert!(TraceReader::new(&m).is_err(), "flip of bit {bit}");
        }
        let full = TraceReader::new(&bytes).unwrap();
        let mut live = StreamLog::default();
        full.replay(&mut live).unwrap();
        for cut in (8..bytes.len()).step_by(13) {
            let Ok((reader, st)) = TraceReader::salvage(&bytes[..cut]) else {
                continue;
            };
            assert!(!st.is_clean());
            let mut replayed = StreamLog::default();
            reader.replay(&mut replayed).unwrap();
            assert!(
                replayed.0.len() <= live.0.len() && live.0[..replayed.0.len()] == replayed.0[..],
                "cut at {cut}: salvaged stream is not a prefix"
            );
        }
    }

    /// v1 and v2 writers cannot represent thread switches: recording a
    /// multithreaded execution through them latches an error that
    /// `finish` reports, instead of silently mislabeling records.
    #[test]
    fn legacy_writers_refuse_multithreaded_runs() {
        let program = fork_join_program();
        for version in [TRACE_VERSION_V1, TRACE_VERSION_V2] {
            let writer = TraceWriter::with_format(Vec::new(), DEFAULT_SEGMENT_LIMIT, version);
            let mut t = SinkTracer(writer);
            Vm::new(&program)
                .run(&mut t)
                .expect("the run itself is fine");
            let err = t.0.finish().expect_err("legacy format must refuse");
            assert_eq!(err.kind(), io::ErrorKind::InvalidInput, "v{version}");
        }
    }

    /// For single-threaded programs the v3 writer is v2 plus exactly one
    /// zero thread-id varint per segment prologue (and the header
    /// version): same segmentation, same payload bytes, same trailer.
    #[test]
    fn v3_single_thread_differs_from_v2_only_in_prologue_thread_ids() {
        let program = kitchen_sink_program();
        let (v3, stats3, _) = record(&program, 8);
        let writer = TraceWriter::with_format(Vec::new(), 8, TRACE_VERSION_V2);
        let mut t = SinkTracer(writer);
        Vm::new(&program).run(&mut t).expect("program runs");
        let (v2, stats2) = t.0.finish().expect("in-memory write cannot fail");
        assert_eq!(stats3.segments, stats2.segments);
        let r3 = TraceReader::new(&v3).expect("v3 parses");
        let r2 = TraceReader::new(&v2).expect("v2 parses");
        assert_eq!(r3.trailer(), r2.trailer());
        for (s3, s2) in r3.segments().iter().zip(r2.segments()) {
            assert_eq!(s3.payload(), s2.payload(), "payload bytes identical");
            assert_eq!(s3.prologue().thread, ThreadId::MAIN);
            assert_eq!(s3.prologue().frames, s2.prologue().frames);
        }
        let (mut a, mut b) = (StreamLog::default(), StreamLog::default());
        r3.replay(&mut a).unwrap();
        r2.replay(&mut b).unwrap();
        assert_eq!(a.0, b.0, "identical stream across wire versions");
    }

    /// Feeds `bytes` to a fresh streaming reader in `chunk`-byte pieces,
    /// stopping at the first error, then declares EOF.
    fn stream_in_chunks(
        bytes: &[u8],
        chunk: usize,
    ) -> (StreamLog, StreamingReader, Result<Trailer, TraceError>) {
        let mut r = StreamingReader::new();
        let mut log = StreamLog::default();
        for c in bytes.chunks(chunk.max(1)) {
            if r.feed(c, &mut log).is_err() {
                break;
            }
        }
        let fin = r.finish();
        (log, r, fin)
    }

    /// A clean stream replays the identical event sequence as the batch
    /// reader — thread announcements included — at every chunk size, and
    /// the verified trailer matches.
    #[test]
    fn streaming_reader_matches_batch_replay_at_any_chunk_size() {
        for program in [kitchen_sink_program(), fork_join_program()] {
            for limit in [DEFAULT_SEGMENT_LIMIT, 4] {
                let (bytes, ..) = record(&program, limit);
                let batch = TraceReader::new(&bytes).expect("trace parses");
                let mut expected = StreamLog::default();
                batch.replay(&mut expected).unwrap();
                for chunk in [1, 7, 64, bytes.len()] {
                    let (log, r, fin) = stream_in_chunks(&bytes, chunk);
                    assert_eq!(log.0, expected.0, "chunk {chunk}, limit {limit}");
                    assert!(r.is_complete());
                    assert_eq!(&fin.expect("clean stream finishes"), batch.trailer());
                    assert_eq!(&r.progress(), batch.trailer());
                    assert_eq!(r.buffered(), 0);
                }
            }
        }
    }

    /// A stream cut anywhere delivers exactly the segments salvage keeps
    /// for the same truncated buffer — the sink observes the longest
    /// valid prefix and `finish` reports the failure.
    #[test]
    fn streaming_reader_matches_salvage_on_truncation() {
        let program = call_heavy_program(12);
        let (bytes, stats, _) = record(&program, 4);
        assert!(stats.segments > 2);
        for cut in (0..bytes.len()).step_by(3) {
            let (log, r, fin) = stream_in_chunks(&bytes[..cut], 7);
            assert!(fin.is_err(), "cut at {cut} must not finish cleanly");
            assert!(!r.is_complete());
            match TraceReader::salvage(&bytes[..cut]) {
                Ok((salvaged, _)) => {
                    let mut expected = StreamLog::default();
                    salvaged.replay(&mut expected).unwrap();
                    assert_eq!(log.0, expected.0, "cut at {cut}");
                    assert_eq!(&r.progress(), salvaged.trailer(), "cut at {cut}");
                }
                // Cuts inside the header leave nothing to deliver.
                Err(_) => assert!(log.0.is_empty(), "cut at {cut}"),
            }
        }
    }

    /// Bit flips past the header produce the same delivered prefix as
    /// salvage: whatever validated before the flip reached the sink,
    /// nothing after it did.
    #[test]
    fn streaming_reader_matches_salvage_on_bit_flips() {
        let program = call_heavy_program(12);
        let (bytes, ..) = record(&program, 4);
        // Skip the 5 header bytes: a version flipped to 1 is readable by
        // salvage but rejected by the streaming reader (by design).
        for bit in (5 * 8..bytes.len() * 8).step_by(23) {
            let mut m = bytes.clone();
            m[bit / 8] ^= 1 << (bit % 8);
            let (log, r, fin) = stream_in_chunks(&m, 64);
            assert!(fin.is_err(), "flip of bit {bit} must not finish cleanly");
            let (salvaged, st) = TraceReader::salvage(&m).expect("header is intact");
            assert!(!st.is_clean(), "flip of bit {bit}");
            let mut expected = StreamLog::default();
            salvaged.replay(&mut expected).unwrap();
            assert_eq!(log.0, expected.0, "flip of bit {bit}");
            assert_eq!(&r.progress(), salvaged.trailer(), "flip of bit {bit}");
        }
    }

    /// Streaming requires the framed formats: a v1 header is rejected up
    /// front, and bytes after the trailer are an error even when they
    /// arrive in a later feed call.
    #[test]
    fn streaming_reader_rejects_v1_and_trailing_bytes() {
        let program = kitchen_sink_program();
        let writer = TraceWriter::with_format(Vec::new(), 8, TRACE_VERSION_V1);
        let mut t = SinkTracer(writer);
        Vm::new(&program).run(&mut t).expect("program runs");
        let (v1, _) = t.0.finish().unwrap();
        let mut r = StreamingReader::new();
        let mut log = StreamLog::default();
        let err = r.feed(&v1, &mut log).expect_err("v1 must be rejected");
        assert!(err.message.contains("framed"), "{}", err.message);
        assert!(log.0.is_empty());
        // Sticky: the same error comes back from every later call.
        assert!(r.feed(b"more", &mut log).is_err());
        assert!(r.finish().is_err());

        let (bytes, ..) = record(&program, 8);
        let mut r = StreamingReader::new();
        let mut log = StreamLog::default();
        r.feed(&bytes, &mut log).expect("clean stream feeds");
        assert!(r.is_complete());
        let err = r
            .feed(b"junk", &mut log)
            .expect_err("post-trailer bytes must be rejected");
        assert!(err.message.contains("trailing"), "{}", err.message);
    }

    /// The per-record cap rejects oversized declared bodies before
    /// buffering them, and out-of-sequence segments (spliced duplicates)
    /// fail by index exactly like the batch reader.
    #[test]
    fn streaming_reader_enforces_record_limit_and_index_order() {
        let program = call_heavy_program(6);
        let (bytes, stats, _) = record(&program, 4);
        assert!(stats.segments >= 2);

        let mut r = StreamingReader::with_record_limit(8);
        let mut log = StreamLog::default();
        let err = r
            .feed(&bytes, &mut log)
            .expect_err("segments exceed an 8-byte cap");
        assert!(err.message.contains("record limit"), "{}", err.message);
        assert!(log.0.is_empty(), "nothing replayed past the cap");

        // Splice a duplicate of segment 0 after itself.
        let mut c = Cur::new(&bytes, 0);
        parse_header(&mut c).unwrap();
        let start = c.pos;
        assert_eq!(c.u8().unwrap(), TAG_SEGMENT);
        let blen = c.declared_len("body").unwrap();
        c.bytes(blen).unwrap();
        c.u32_raw().unwrap();
        let end = c.pos;
        let mut spliced = bytes[..end].to_vec();
        spliced.extend_from_slice(&bytes[start..]);
        let (log, r, fin) = stream_in_chunks(&spliced, 16);
        assert!(fin.is_err());
        assert!(
            r.error().is_some_and(|e| e.message.contains("index")),
            "{:?}",
            r.error()
        );
        // Exactly segment 0 was delivered before the failure.
        assert_eq!(r.segments_seen(), 1);
        assert!(!log.0.is_empty());
    }
}
