//! In-memory event batching for pipelined live profiling.
//!
//! [`BatchSink`] is the live-run sibling of
//! [`TraceWriter`](crate::trace::TraceWriter): it consumes the same
//! [`EventSink`] stream, but instead of serializing records to bytes it
//! packs them into flat in-memory [`EventBatch`]es and hands each one to
//! a [`BatchTarget`] (in the pipelined profiler, the producer half of a
//! bounded ring buffer). Batches observe the exact segment-boundary
//! invariant of the trace writer: a batch may only end immediately
//! before a frame push, so every non-first batch begins with a
//! frame-push record and carries a [`Prologue`] describing the live
//! shadow stack — which is precisely what a per-segment shard builder
//! needs to start mid-run.
//!
//! The hooks are infallible (mirroring the writer's deferred-I/O-error
//! idiom): when the target reports that the consumer is gone, the sink
//! latches a dead flag and silently discards the rest of the stream, so
//! a crashed pipeline never takes the VM down with it mid-run.

use crate::event::{Event, FrameInfo};
use crate::sink::EventSink;
use crate::trace::{Prologue, PrologueFrame};
use lowutil_ir::ThreadId;

/// Default records-per-batch target, matching the trace writer's
/// [`DEFAULT_SEGMENT_LIMIT`](crate::trace::DEFAULT_SEGMENT_LIMIT).
pub const DEFAULT_BATCH_LIMIT: usize = 16 * 1024;

/// One record of an [`EventBatch`] — the in-memory form of the three
/// [`EventSink`] hooks.
#[derive(Debug, Clone)]
pub enum BatchRecord {
    /// An instruction event.
    Event(Event),
    /// A frame push.
    Push(FrameInfo),
    /// A frame pop.
    Pop,
}

/// A contiguous chunk of the event stream, with the shadow-stack state
/// it starts from — the in-memory analogue of a trace segment.
#[derive(Debug, Clone, Default)]
pub struct EventBatch {
    /// The shadow-stack state at the batch's first record.
    pub prologue: Prologue,
    /// The records, in execution order.
    pub records: Vec<BatchRecord>,
}

impl EventBatch {
    /// Replays the batch's records into `sink`, in recorded order. The
    /// owning thread is announced first, unconditionally: batches are
    /// replayed into per-batch shard builders that have no cross-batch
    /// "current thread" to diff against, so each batch seeds its
    /// consumer with its own thread (a `thread(MAIN)` call on a
    /// single-threaded stream is an idempotent no-op for consumers).
    pub fn replay<S: EventSink>(&self, sink: &mut S) {
        sink.thread(self.prologue.thread);
        for r in &self.records {
            match r {
                BatchRecord::Event(e) => sink.event(e),
                BatchRecord::Push(info) => sink.frame_push(info),
                BatchRecord::Pop => sink.frame_pop(),
            }
        }
    }
}

/// Where a [`BatchSink`] delivers finished batches.
pub trait BatchTarget {
    /// Accepts the next batch. Returning `false` means the consumer is
    /// gone; the sink stops batching and discards the rest of the run.
    fn accept(&mut self, batch: EventBatch) -> bool;

    /// Hands back a spent record buffer for the sink to refill, if the
    /// target has one (e.g. a pipeline consumer returning buffers it
    /// has replayed). Reusing warm buffers makes steady-state packing
    /// allocation-free. The default has none.
    fn recycle(&mut self) -> Option<Vec<BatchRecord>> {
        None
    }
}

/// Collects batches in memory — the testing target.
impl BatchTarget for Vec<EventBatch> {
    fn accept(&mut self, batch: EventBatch) -> bool {
        self.push(batch);
        true
    }
}

/// An [`EventSink`] that packs the stream into [`EventBatch`]es of
/// roughly `limit` records, split only at frame-push boundaries.
#[derive(Debug)]
pub struct BatchSink<T: BatchTarget> {
    target: T,
    limit: usize,
    records: Vec<BatchRecord>,
    /// Prologue of the batch currently being filled (captured when the
    /// previous batch was flushed).
    prologue: Prologue,
    /// Per-thread live-frame mirrors for prologue capture, indexed by
    /// thread id, as in the trace writer. Gids stay globally unique.
    frames: Vec<Vec<PrologueFrame>>,
    /// The thread whose records the current batch holds.
    cur_thread: usize,
    push_count: u64,
    in_phase: bool,
    batches: u64,
    dead: bool,
}

impl<T: BatchTarget> BatchSink<T> {
    /// Creates a sink targeting `limit` records per batch (clamped to at
    /// least 1). Like trace segments, batches can exceed the limit when
    /// the program runs long stretches without a frame push.
    pub fn new(target: T, limit: usize) -> Self {
        BatchSink {
            target,
            limit: limit.max(1),
            records: Vec::new(),
            // The run starts outside any frame and any phase, with the
            // first push receiving gid 0 — exactly `Prologue::default()`.
            prologue: Prologue::default(),
            frames: vec![Vec::new()],
            cur_thread: 0,
            push_count: 0,
            in_phase: false,
            batches: 0,
            dead: false,
        }
    }

    /// `true` once the target rejected a batch; the rest of the stream
    /// is being discarded.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    fn flush(&mut self) {
        // Refill from a recycled buffer when the target has one (its
        // capacity is warm from a previous batch of this very run);
        // otherwise size the fresh buffer by the batch just packed, so
        // long push-free stretches don't re-pay the realloc-and-copy
        // growth chain on every batch.
        let next = match self.target.recycle() {
            Some(mut v) => {
                v.clear();
                v
            }
            None => Vec::with_capacity(self.records.len()),
        };
        let records = std::mem::replace(&mut self.records, next);
        let next = Prologue {
            thread: ThreadId(self.cur_thread as u32),
            frames: self.frames[self.cur_thread].clone(),
            in_phase: self.in_phase,
            first_gid: self.push_count,
        };
        let prologue = std::mem::replace(&mut self.prologue, next);
        self.batches += 1;
        if !self.target.accept(EventBatch { prologue, records }) {
            self.dead = true;
        }
    }

    /// Flushes the final batch and returns the target. An empty run
    /// still produces one (empty) batch, mirroring the trace writer's
    /// at-least-one-segment guarantee.
    pub fn finish(mut self) -> T {
        if !self.dead && (!self.records.is_empty() || self.batches == 0) {
            self.flush();
        }
        self.target
    }
}

impl<T: BatchTarget> EventSink for BatchSink<T> {
    fn event(&mut self, event: &Event) {
        if self.dead {
            return;
        }
        if let Event::Phase { begin, .. } = event {
            self.in_phase = *begin;
        }
        self.records.push(BatchRecord::Event(event.clone()));
    }

    fn frame_push(&mut self, info: &FrameInfo) {
        if self.dead {
            return;
        }
        // Batches may only split here: flushing *before* recording the
        // push guarantees every non-first batch begins with a
        // frame-push record, so a shard builder always enters a frame
        // it saw being created.
        if self.records.len() >= self.limit {
            self.flush();
            if self.dead {
                return;
            }
        }
        self.frames[self.cur_thread].push(PrologueFrame {
            method: info.method,
            num_locals: info.num_locals,
            gid: self.push_count,
            receiver: info.receiver,
        });
        self.push_count += 1;
        self.records.push(BatchRecord::Push(info.clone()));
    }

    fn frame_pop(&mut self) {
        if self.dead {
            return;
        }
        self.frames[self.cur_thread].pop();
        self.records.push(BatchRecord::Pop);
    }

    fn thread(&mut self, tid: ThreadId) {
        if self.dead || tid.index() == self.cur_thread {
            return;
        }
        // Batches are per-thread, like trace segments: close the
        // departing thread's batch and start one owned by `tid`.
        if !self.records.is_empty() {
            self.flush();
            if self.dead {
                return;
            }
        }
        self.cur_thread = tid.index();
        if self.frames.len() <= self.cur_thread {
            self.frames.resize_with(self.cur_thread + 1, Vec::new);
        }
        self.prologue = Prologue {
            thread: tid,
            frames: self.frames[self.cur_thread].clone(),
            in_phase: self.in_phase,
            first_gid: self.push_count,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CountingSink, SinkTracer, Vm};
    use lowutil_ir::{BinOp, ConstValue, ProgramBuilder};

    /// A program with enough calls that small batch limits force splits.
    fn call_heavy_program(iters: i64) -> lowutil_ir::Program {
        let mut pb = ProgramBuilder::new();
        let print = pb.native("print", 1, false);
        let mut twice = pb.method("twice", 1);
        let p0 = twice.param(0);
        let r = twice.new_local("r");
        twice.binop(r, BinOp::Add, p0, p0);
        twice.ret(r);
        let twice_id = twice.finish(&mut pb);
        let mut main = pb.method("main", 0);
        let i = main.new_local("i");
        let one = main.new_local("one");
        let lim = main.new_local("lim");
        let acc = main.new_local("acc");
        main.constant(i, ConstValue::Int(0));
        main.constant(one, ConstValue::Int(1));
        main.constant(lim, ConstValue::Int(iters));
        let loop_top = main.label();
        let done = main.label();
        main.bind(loop_top);
        main.branch(lowutil_ir::CmpOp::Ge, i, lim, done);
        main.call(Some(acc), twice_id, &[i]);
        main.binop(i, BinOp::Add, i, one);
        main.jump(loop_top);
        main.bind(done);
        main.call_native_void(print, &[acc]);
        main.ret_void();
        let main_id = main.finish(&mut pb);
        pb.finish(main_id).expect("valid program")
    }

    /// Collect batches at a tiny limit and replay them back-to-back:
    /// the stream must be lossless and in order.
    #[test]
    fn batched_stream_replays_losslessly() {
        let p = call_heavy_program(20);
        let mut direct = SinkTracer(CountingSink::new());
        Vm::new(&p).run(&mut direct).expect("runs");

        let mut tracer = SinkTracer(BatchSink::new(Vec::new(), 4));
        Vm::new(&p).run(&mut tracer).expect("runs");
        let batches = tracer.0.finish();
        assert!(batches.len() > 3, "tiny limit must split the run");

        let mut replayed = CountingSink::new();
        for b in &batches {
            b.replay(&mut replayed);
        }
        assert_eq!(direct.0.events, replayed.events);
        assert_eq!(direct.0.pushes, replayed.pushes);
        assert_eq!(direct.0.pops, replayed.pops);
    }

    /// Every non-first batch starts with a frame push, and its prologue
    /// gids chain consistently with the pushes seen so far.
    #[test]
    fn batches_split_only_at_frame_pushes() {
        let p = call_heavy_program(20);
        let mut tracer = SinkTracer(BatchSink::new(Vec::new(), 4));
        Vm::new(&p).run(&mut tracer).expect("runs");
        let batches = tracer.0.finish();

        let mut pushes_seen = 0u64;
        for (i, b) in batches.iter().enumerate() {
            if i == 0 {
                assert_eq!(b.prologue.frames.len(), 0);
                assert_eq!(b.prologue.first_gid, 0);
            } else {
                assert!(
                    matches!(b.records.first(), Some(BatchRecord::Push(_))),
                    "batch {i} does not start with a push"
                );
                assert_eq!(b.prologue.first_gid, pushes_seen);
                // The prologue's live frames are a stack of previously
                // assigned gids.
                for f in &b.prologue.frames {
                    assert!(f.gid < pushes_seen);
                }
            }
            pushes_seen += b
                .records
                .iter()
                .filter(|r| matches!(r, BatchRecord::Push(_)))
                .count() as u64;
        }
    }

    /// A target that rejects after `n` batches kills the sink without
    /// disturbing the run.
    #[test]
    fn dead_target_discards_quietly() {
        struct Flaky {
            left: usize,
        }
        impl BatchTarget for Flaky {
            fn accept(&mut self, _b: EventBatch) -> bool {
                if self.left == 0 {
                    return false;
                }
                self.left -= 1;
                true
            }
        }
        let p = call_heavy_program(50);
        let mut tracer = SinkTracer(BatchSink::new(Flaky { left: 2 }, 4));
        Vm::new(&p)
            .run(&mut tracer)
            .expect("run unaffected by dead consumer");
        assert!(tracer.0.is_dead());
    }

    /// A multithreaded run batches per-thread: each batch's records all
    /// belong to its prologue's thread, and replaying the batches
    /// back-to-back loses nothing.
    #[test]
    fn multithreaded_batches_are_per_thread_and_lossless() {
        let src = r#"
native print/1
method main/0 {
  a = 3
  b = 4
  t1 = spawn work(a)
  t2 = spawn work(b)
  r1 = join t1
  r2 = join t2
  s = r1 + r2
  native print(s)
  return
}
method work/1 {
  i = 0
  one = 1
  lim = 30
loop:
  i = i + one
  if i < lim goto loop
  r = p0 + p0
  return r
}
"#;
        let p = lowutil_ir::parse_program(src).unwrap();
        let mut direct = SinkTracer(CountingSink::new());
        Vm::new(&p).run(&mut direct).expect("runs");
        assert!(direct.0.switches > 0, "run must interleave");

        let mut tracer = SinkTracer(BatchSink::new(Vec::new(), 4));
        Vm::new(&p).run(&mut tracer).expect("runs");
        let batches = tracer.0.finish();
        let threads: std::collections::BTreeSet<ThreadId> =
            batches.iter().map(|b| b.prologue.thread).collect();
        assert!(threads.len() >= 3, "main + two workers");
        // Within one thread, batches still split only at frame pushes.
        for w in batches.windows(2) {
            if w[1].prologue.thread == w[0].prologue.thread {
                assert!(matches!(w[1].records.first(), Some(BatchRecord::Push(_))));
            }
        }

        let mut replayed = CountingSink::new();
        for b in &batches {
            b.replay(&mut replayed);
        }
        assert_eq!(direct.0.events, replayed.events);
        assert_eq!(direct.0.pushes, replayed.pushes);
        assert_eq!(direct.0.pops, replayed.pops);
    }

    /// An empty run still yields exactly one (empty) batch.
    #[test]
    fn empty_run_produces_one_batch() {
        let sink: BatchSink<Vec<EventBatch>> = BatchSink::new(Vec::new(), 8);
        let batches = sink.finish();
        assert_eq!(batches.len(), 1);
        assert!(batches[0].records.is_empty());
        assert_eq!(batches[0].prologue, Prologue::default());
    }
}
