//! Shadow memory: the paper's tracking-data machinery, generic over the
//! tracking payload.
//!
//! The paper (§2.3) associates a shadow location with every storage
//! location: shadow locals live on a shadow stack aligned with the call
//! stack, and heap locations are shadowed by a *shadow heap* of the same
//! shape as the Java heap. A *tracking stack* passes tracking data for
//! actual parameters and return values across calls, together with the
//! caller's receiver-object context chain.
//!
//! These structures are generic over the payload `T` (dependence-graph node
//! references for the cost analyses; origin records for copy profiling) so
//! every client analysis reuses the same machinery.

use lowutil_ir::ObjectId;

/// Shadow storage for one frame's locals.
#[derive(Debug, Clone)]
pub struct ShadowFrame<T> {
    slots: Vec<T>,
}

impl<T: Clone + Default> ShadowFrame<T> {
    /// Creates a frame with `num_locals` default-initialized shadow slots.
    pub fn new(num_locals: usize) -> Self {
        ShadowFrame {
            slots: vec![T::default(); num_locals],
        }
    }

    /// Reads a shadow slot.
    ///
    /// # Panics
    /// Panics if `slot` is out of range (a VM bug, not a program bug).
    pub fn get(&self, slot: usize) -> &T {
        &self.slots[slot]
    }

    /// Writes a shadow slot.
    ///
    /// # Panics
    /// Panics if `slot` is out of range.
    pub fn set(&mut self, slot: usize, value: T) {
        self.slots[slot] = value;
    }
}

/// A stack of [`ShadowFrame`]s aligned with the VM call stack.
#[derive(Debug, Clone, Default)]
pub struct ShadowStack<T> {
    frames: Vec<ShadowFrame<T>>,
}

impl<T: Clone + Default> ShadowStack<T> {
    /// Creates an empty shadow stack.
    pub fn new() -> Self {
        ShadowStack { frames: Vec::new() }
    }

    /// Pushes a frame with `num_locals` shadow slots.
    pub fn push(&mut self, num_locals: usize) {
        self.frames.push(ShadowFrame::new(num_locals));
    }

    /// Pops the top frame.
    ///
    /// # Panics
    /// Panics if the stack is empty.
    pub fn pop(&mut self) {
        self.frames.pop().expect("shadow stack underflow");
    }

    /// The current (top) frame.
    ///
    /// # Panics
    /// Panics if the stack is empty.
    pub fn top(&self) -> &ShadowFrame<T> {
        self.frames.last().expect("shadow stack empty")
    }

    /// The current (top) frame, mutably.
    ///
    /// # Panics
    /// Panics if the stack is empty.
    pub fn top_mut(&mut self) -> &mut ShadowFrame<T> {
        self.frames.last_mut().expect("shadow stack empty")
    }

    /// Current stack depth.
    pub fn depth(&self) -> usize {
        self.frames.len()
    }
}

/// Shadow storage for the heap: one payload per object slot, plus one *tag*
/// per object (the paper stores allocation-site tags in the shadow heap
/// because the J9 object header cannot be modified).
#[derive(Debug, Clone)]
pub struct ShadowHeap<T, Tag> {
    slots: Vec<Vec<T>>,
    tags: Vec<Tag>,
    default_tag: Tag,
}

impl<T: Clone + Default, Tag: Clone> ShadowHeap<T, Tag> {
    /// Creates an empty shadow heap; objects get `default_tag` until
    /// explicitly tagged.
    pub fn new(default_tag: Tag) -> Self {
        ShadowHeap {
            slots: Vec::new(),
            tags: Vec::new(),
            default_tag,
        }
    }

    fn ensure(&mut self, obj: ObjectId, min_slots: usize) {
        while self.slots.len() <= obj.index() {
            self.slots.push(Vec::new());
            self.tags.push(self.default_tag.clone());
        }
        let v = &mut self.slots[obj.index()];
        if v.len() < min_slots {
            v.resize(min_slots, T::default());
        }
    }

    /// Registers a fresh object with `num_slots` shadow slots and a tag.
    pub fn on_alloc(&mut self, obj: ObjectId, num_slots: usize, tag: Tag) {
        self.ensure(obj, num_slots);
        self.tags[obj.index()] = tag;
    }

    /// Reads the shadow of `(obj, slot)`; default if never written.
    pub fn get(&self, obj: ObjectId, slot: usize) -> T {
        self.slots
            .get(obj.index())
            .and_then(|v| v.get(slot))
            .cloned()
            .unwrap_or_default()
    }

    /// Writes the shadow of `(obj, slot)`, growing storage on demand.
    pub fn set(&mut self, obj: ObjectId, slot: usize, value: T) {
        self.ensure(obj, slot + 1);
        self.slots[obj.index()][slot] = value;
    }

    /// Reads an object's tag (allocation-site tag in the cost analyses).
    pub fn tag(&self, obj: ObjectId) -> Tag {
        self.tags
            .get(obj.index())
            .cloned()
            .unwrap_or_else(|| self.default_tag.clone())
    }

    /// Approximate memory footprint in bytes (for the paper's `M` column).
    pub fn approx_bytes(&self) -> usize {
        let slot = std::mem::size_of::<T>();
        let tag = std::mem::size_of::<Tag>();
        self.slots.iter().map(|v| v.len() * slot).sum::<usize>() + self.tags.len() * tag
    }
}

/// The tracking stack: passes tracking data for actuals/returns across
/// calls, and the caller's context chain (rule METHOD ENTRY / RETURN).
#[derive(Debug, Clone, Default)]
pub struct TrackingStack<T> {
    items: Vec<T>,
}

impl<T> TrackingStack<T> {
    /// Creates an empty tracking stack.
    pub fn new() -> Self {
        TrackingStack { items: Vec::new() }
    }

    /// Pushes tracking data (an actual parameter, a return value, or a
    /// context word).
    pub fn push(&mut self, item: T) {
        self.items.push(item);
    }

    /// Pops the most recent item.
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop()
    }

    /// Current number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Returns `true` if the stack is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shadow_stack_aligns_with_frames() {
        let mut s: ShadowStack<u32> = ShadowStack::new();
        s.push(2);
        s.top_mut().set(0, 7);
        s.push(1);
        assert_eq!(*s.top().get(0), 0);
        s.top_mut().set(0, 9);
        s.pop();
        assert_eq!(*s.top().get(0), 7);
        assert_eq!(s.depth(), 1);
    }

    #[test]
    fn shadow_heap_defaults_and_grows() {
        let mut h: ShadowHeap<u64, &'static str> = ShadowHeap::new("untagged");
        let o = ObjectId(5);
        assert_eq!(h.get(o, 3), 0);
        assert_eq!(h.tag(o), "untagged");
        h.on_alloc(o, 2, "site0");
        h.set(o, 3, 42); // grows past declared slots (array-style)
        assert_eq!(h.get(o, 3), 42);
        assert_eq!(h.tag(o), "site0");
        assert!(h.approx_bytes() > 0);
    }

    #[test]
    fn tracking_stack_is_lifo() {
        let mut t = TrackingStack::new();
        assert!(t.is_empty());
        t.push(1);
        t.push(2);
        assert_eq!(t.len(), 2);
        assert_eq!(t.pop(), Some(2));
        assert_eq!(t.pop(), Some(1));
        assert_eq!(t.pop(), None);
    }
}
