#!/usr/bin/env bash
# Multi-core honesty wrapper for the absorb-latency baseline.
#
# DESIGN.md §11's recipe, scripted: pin the bench to an explicit core
# set with taskset (when available) so the JSON's "cores" field records
# the cores the run *actually* had — Rust's available_parallelism
# respects the affinity mask — instead of whatever the host happens to
# advertise. Regenerates the persistent-store baseline, including the
# rebuild-vs-delta absorb rows.
#
# Usage: scripts/bench_multicore.sh [CORES] [OUT.json]
#   CORES  cores to pin to, 0-based from core 0 (default: all available)
#   OUT    output JSON path (default: BENCH_PR10.json)
set -euo pipefail

cd "$(dirname "$0")/.."
avail=$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)
cores="${1:-$avail}"
out="${2:-BENCH_PR10.json}"
if [ "$cores" -lt 1 ]; then cores=1; fi
if [ "$cores" -gt "$avail" ]; then
  echo "requested $cores cores, machine has $avail; clamping" >&2
  cores="$avail"
fi

store=$(mktemp -d)
trap 'rm -rf "$store"' EXIT

cmd=(cargo run --release -p lowutil-bench --bin table1 --
     --size default --store "$store" --jobs "$cores" --json "$out")
if command -v taskset >/dev/null 2>&1; then
  taskset -c "0-$((cores - 1))" "${cmd[@]}"
else
  # Best effort: no taskset (non-Linux or minimal container). The run
  # is unpinned, but "cores" still records detected parallelism.
  echo "taskset unavailable; running unpinned on $avail core(s)" >&2
  "${cmd[@]}"
fi
echo "wrote $out (cores=$cores)"
