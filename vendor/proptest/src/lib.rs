//! A minimal, dependency-free drop-in for the subset of the `proptest`
//! crate this workspace uses.
//!
//! The build environment has no access to crates.io, so the real
//! `proptest` cannot be fetched. This vendored stand-in keeps the public
//! surface the tests rely on — `proptest!`, `prop_assert*!`, `prop_oneof!`,
//! `Strategy`/`prop_map`, integer-range and tuple strategies, `Just`,
//! `any`, `proptest::collection::vec`, and `ProptestConfig` — with the
//! same semantics: deterministic pseudo-random generation of many cases
//! per test, failing with the offending inputs printed.
//!
//! Differences from the real crate (acceptable for these tests):
//! * no shrinking — failures report the original generated inputs;
//! * the RNG is a fixed-seed xorshift, so runs are fully reproducible;
//! * only the strategy combinators listed above are provided.

#![forbid(unsafe_code)]

use std::fmt;

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` generated inputs.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; 128 keeps VM-heavy suites quick
        // while still exploring a meaningful input space.
        ProptestConfig { cases: 128 }
    }
}

/// A failed property within a generated case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with a message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

pub mod test_runner {
    //! The deterministic RNG driving generation.

    /// xorshift64* PRNG; deterministic per (seed, case) pair.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for one numbered case of a test.
        pub fn for_case(case: u64) -> Self {
            // Splitmix the case index so consecutive cases diverge fast.
            let mut z = case
                .wrapping_add(0x9e37_79b9_7f4a_7c15)
                .wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z ^= z >> 30;
            z = z.wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            TestRng { state: z | 1 }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.state = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }

        /// Uniform value in `[lo, hi)` over a signed 128-bit span.
        pub fn in_range(&mut self, lo: i128, hi: i128) -> i128 {
            debug_assert!(lo < hi, "empty range");
            let span = (hi - lo) as u128;
            lo + (u128::from(self.next_u64()) % span) as i128
        }
    }
}

pub mod strategy {
    //! The `Strategy` trait and the combinators the tests use.

    use super::test_runner::TestRng;
    use std::fmt::Debug;
    use std::ops::Range;
    use std::rc::Rc;

    /// A generator of values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value: Debug;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Derives a dependent strategy from each generated value and
        /// draws from it — sized collections, index-into-length pairs.
        fn prop_flat_map<T: Strategy, F: Fn(Self::Value) -> T>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Rejects generated values failing `pred`, regenerating in
        /// place (no shrink machinery here, so rejection is just a
        /// retry). `whence` labels the filter in the panic raised if
        /// the predicate keeps rejecting.
        fn prop_filter<P: Fn(&Self::Value) -> bool>(
            self,
            whence: &'static str,
            pred: P,
        ) -> Filter<Self, P>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                whence,
                pred,
            }
        }

        /// Type-erases the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                gen: Rc::new(move |rng| self.generate(rng)),
            }
        }
    }

    /// A type-erased strategy.
    #[derive(Clone)]
    pub struct BoxedStrategy<V> {
        gen: Rc<dyn Fn(&mut TestRng) -> V>,
    }

    impl<V: Debug> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (self.gen)(rng)
        }
    }

    /// `Strategy::prop_map` adapter.
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// `Strategy::prop_flat_map` adapter.
    #[derive(Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// `Strategy::prop_filter` adapter.
    #[derive(Clone)]
    pub struct Filter<S, P> {
        inner: S,
        whence: &'static str,
        pred: P,
    }

    impl<S: Strategy, P: Fn(&S::Value) -> bool> Strategy for Filter<S, P> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1_000 {
                let v = self.inner.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter({:?}) rejected 1000 consecutive values",
                self.whence
            )
        }
    }

    /// Always generates a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among equally weighted alternatives
    /// (the expansion of `prop_oneof!`).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Builds a union over the given alternatives.
        ///
        /// # Panics
        /// Panics if `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs an alternative");
            Union { options }
        }
    }

    impl<V: Debug> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.in_range(self.start as i128, self.end as i128) as $t
                }
            }
        )+};
    }
    int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);

    /// Types with a canonical whole-domain strategy (`any::<T>()`).
    pub trait Arbitrary: Sized + Debug {
        /// Generates an arbitrary value of the type.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),+) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )+};
    }
    arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The whole-domain strategy for `T`.
    #[derive(Debug, Clone, Default)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// `any::<T>()` — generate any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::fmt::Debug;
    use std::ops::Range;

    /// Strategy for `Vec`s with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.in_range(
                self.len.start as i128,
                self.len.end.max(self.len.start + 1) as i128,
            ) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Length specifications accepted by [`vec()`]: an exact length or a
    /// half-open range (mirrors proptest's `SizeRange` conversions).
    pub trait IntoSizeRange {
        /// The equivalent half-open range.
        fn into_size_range(self) -> Range<usize>;
    }

    impl IntoSizeRange for usize {
        fn into_size_range(self) -> Range<usize> {
            self..self + 1
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn into_size_range(self) -> Range<usize> {
            self
        }
    }

    /// `proptest::collection::vec(element, len)`.
    pub fn vec<S: Strategy>(element: S, len: impl IntoSizeRange) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into_size_range(),
        }
    }
}

pub mod option {
    //! `proptest::option` — strategies over `Option<T>`.
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// `Some(inner)` with probability `p`, else `None`.
    pub fn weighted<S: Strategy>(p: f64, inner: S) -> Weighted<S> {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        Weighted { p, inner }
    }

    /// See [`weighted`].
    #[derive(Clone)]
    pub struct Weighted<S> {
        p: f64,
        inner: S,
    }

    impl<S: Strategy> Strategy for Weighted<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            // 53 uniform mantissa bits — deterministic given the rng.
            let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            (u < self.p).then(|| self.inner.generate(rng))
        }
    }
}

pub mod prelude {
    //! `use proptest::prelude::*;`
    pub use crate::strategy::{any, Any, BoxedStrategy, Just, Strategy, Union};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, ProptestConfig,
        TestCaseError,
    };
}

/// Property failure unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Property failure unless both sides compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                format!($($fmt)+),
                left,
                right
            )));
        }
    }};
}

/// Property failure if both sides compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
}

/// Uniform choice among strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over many generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..u64::from(config.cases) {
                let mut rng = $crate::test_runner::TestRng::for_case(case);
                $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)+
                let described = format!("{:?}", ($(&$arg,)+));
                let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest case {case}/{} failed: {e}\n  inputs: {described}",
                        config.cases
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = crate::test_runner::TestRng::for_case(7);
        let mut b = crate::test_runner::TestRng::for_case(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::test_runner::TestRng::for_case(0);
        for _ in 0..1000 {
            let v = (-100..100i64).generate(&mut rng);
            assert!((-100..100).contains(&v));
            let u = (0..4u8).generate(&mut rng);
            assert!(u < 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_generates_and_asserts(
            v in crate::collection::vec((0..10u8, -5..5i64).prop_map(|(a, b)| (a, b)), 0..20)
        ) {
            prop_assert!(v.len() < 20);
            for (a, b) in v {
                prop_assert!(a < 10);
                prop_assert!((-5..5).contains(&b), "b out of range: {b}");
            }
        }

        #[test]
        fn oneof_and_just_cover_alternatives(
            x in prop_oneof![Just(1u32), 2..5u32, (10..12u32,).prop_map(|(a,)| a)]
        ) {
            prop_assert!(x == 1 || (2..5).contains(&x) || (10..12).contains(&x));
        }
    }
}
