//! A minimal, dependency-free drop-in for the subset of the `criterion`
//! benchmarking API this workspace uses.
//!
//! The build environment has no access to crates.io, so the real
//! `criterion` cannot be fetched. This stand-in keeps the bench sources
//! compiling unchanged (`criterion_group!`/`criterion_main!`,
//! `Criterion`, `BenchmarkGroup`, `BenchmarkId`, `Throughput`,
//! `black_box`, `Bencher::iter`) and produces wall-clock measurements:
//! each benchmark is warmed up, then sampled, and the median ns/iter is
//! printed (plus throughput when configured).
//!
//! Not statistics-grade — no outlier analysis, no saved baselines — but
//! the relative numbers between two benchmarks in one run are meaningful,
//! which is what the hashed-vs-dense and tracked-vs-untracked comparisons
//! need.

#![forbid(unsafe_code)]

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter.
    pub fn new(function_id: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Anything accepted as a benchmark name.
pub trait IntoBenchmarkId {
    /// The rendered name.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Runs the closure under timing.
#[derive(Debug)]
pub struct Bencher {
    warm_up: Duration,
    measure: Duration,
    samples: usize,
    /// Filled by `iter`: per-sample mean ns/iter.
    sample_ns: Vec<f64>,
}

impl Bencher {
    /// Measures `routine`, recording samples for the report.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: also estimates how many iterations fill one sample.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let per_sample = self.measure.as_secs_f64() / self.samples.max(1) as f64;
        let iters_per_sample = ((per_sample / per_iter.max(1e-9)) as u64).max(1);

        self.sample_ns.clear();
        for _ in 0..self.samples.max(1) {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let ns = start.elapsed().as_secs_f64() * 1e9 / iters_per_sample as f64;
            self.sample_ns.push(ns);
        }
    }

    fn median_ns(&self) -> f64 {
        let mut v = self.sample_ns.clone();
        if v.is_empty() {
            return f64::NAN;
        }
        v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN samples"));
        v[v.len() / 2]
    }
}

fn human_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn report(name: &str, bencher: &Bencher, throughput: Option<Throughput>) {
    let ns = bencher.median_ns();
    let mut line = format!("{name:<48} {:>12}/iter", human_time(ns));
    if let Some(t) = throughput {
        let (count, unit) = match t {
            Throughput::Elements(n) => (n, "elem"),
            Throughput::Bytes(n) => (n, "B"),
        };
        let per_sec = count as f64 / (ns / 1e9);
        line.push_str(&format!("  {per_sec:>14.0} {unit}/s"));
    }
    println!("{line}");
}

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    warm_up: Duration,
    measure: Duration,
    samples: usize,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(500),
            measure: Duration::from_secs(2),
            samples: 20,
            filter: None,
        }
    }
}

impl Criterion {
    /// Sets the warm-up duration.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Sets the total measurement duration per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measure = d;
        self
    }

    /// Sets the number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.samples = n;
        self
    }

    /// Applies CLI arguments: `--quick` shortens runs; a bare string
    /// filters benchmark names; everything else (cargo-bench plumbing
    /// like `--bench`) is ignored.
    pub fn configure_from_args(mut self) -> Self {
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--quick" => {
                    self.warm_up = Duration::from_millis(50);
                    self.measure = Duration::from_millis(200);
                    self.samples = 5;
                }
                "--bench" | "--test" => {}
                a if a.starts_with('-') => {}
                filter => self.filter = Some(filter.to_string()),
            }
        }
        self
    }

    fn skip(&self, name: &str) -> bool {
        match &self.filter {
            Some(f) => !name.contains(f.as_str()),
            None => false,
        }
    }

    fn bencher(&self) -> Bencher {
        Bencher {
            warm_up: self.warm_up,
            measure: self.measure,
            samples: self.samples,
            sample_ns: Vec::new(),
        }
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let name = name.into_id();
        if !self.skip(&name) {
            let mut b = self.bencher();
            f(&mut b);
            report(&name, &b, None);
        }
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_id());
        if !self.criterion.skip(&full) {
            let mut b = self.criterion.bencher();
            f(&mut b);
            report(&full, &b, self.throughput);
        }
        self
    }

    /// Runs one benchmark with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_id());
        if !self.criterion.skip(&full) {
            let mut b = self.criterion.bencher();
            f(&mut b, input);
            report(&full, &b, self.throughput);
        }
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, optionally with a custom
/// `Criterion` configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20))
            .sample_size(3)
    }

    #[test]
    fn bench_function_measures_and_reports() {
        let mut c = quick();
        c.bench_function("smoke/add", |b| b.iter(|| black_box(2u64) + black_box(3)));
    }

    #[test]
    fn groups_support_inputs_and_throughput() {
        let mut c = quick();
        let mut g = c.benchmark_group("smoke/group");
        g.throughput(Throughput::Elements(128));
        g.bench_with_input(BenchmarkId::new("sum", 128), &128u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &n| {
            b.iter(|| n * n)
        });
        g.finish();
    }

    #[test]
    fn ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
