//! Extended copy profiling (Figure 2(c) of the paper): find heap-to-heap
//! copy chains *including* the intermediate stack hops, which identify the
//! methods the data was funneled through.
//!
//! Run with: `cargo run --example copy_chains`

use lowutil::analyses::copy::{copy_chains, copy_profiler, copy_ratio};
use lowutil::ir::parse_program;
use lowutil::vm::Vm;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Data is read from Source.f and ferried through three methods into
    // Dest.g without any computation — a pure copy chain.
    let program = parse_program(
        r#"
class Source { f }
class Dest { g }
method relay1/1 {
  r = p0
  return r
}
method relay2/1 {
  x = call relay1(p0)
  y = x
  return y
}
method main/0 {
  src = new Source
  v = 99
  src.f = v
  i = 0
  one = 1
  lim = 10
loop:
  if i >= lim goto done
  raw = src.f
  cooked = call relay2(raw)
  d = new Dest
  d.g = cooked
  i = i + one
  goto loop
done:
  return
}
"#,
    )?;

    let mut profiler = copy_profiler();
    Vm::new(&program).run(&mut profiler)?;
    let (graph, _domain) = profiler.finish();

    println!(
        "copy ratio: {:.1}% of profiled instances are pure copies\n",
        copy_ratio(&graph) * 100.0
    );
    for chain in copy_chains(&graph) {
        let load = chain
            .load
            .map(|l| program.instr_label(l))
            .unwrap_or_else(|| "?".into());
        println!(
            "chain ({}x): {} -> {} via {} stack hops:",
            chain.count,
            chain.source,
            chain.dest,
            chain.hops.len()
        );
        println!("  load  {load}");
        for hop in &chain.hops {
            println!("  copy  {}", program.instr_label(*hop));
        }
        println!("  store {}", program.instr_label(chain.store));
    }
    Ok(())
}
