//! Formulating a *new* backward-dynamic-flow analysis in the abstract
//! slicing framework — the paper's generality claim (§2.1: "many BDF
//! problems exhibit bounded-domain properties; their analysis-specific
//! dependence graphs can be obtained by defining the appropriate
//! abstraction functions").
//!
//! Here the client is a **taint tracker**: values originating from the
//! `rand` native are tainted; the bounded domain is `{Tainted, Clean}`,
//! and the abstraction function marks an instance tainted iff any of its
//! inputs were. The finished graph answers "which stores put
//! attacker-influenced data into the heap, and from where?" — all in
//! ~40 lines of client code.
//!
//! Run with: `cargo run --example custom_domain`

use lowutil::core::{AbstractDomain, AbstractProfiler, NodeKind};
use lowutil::ir::parse_program;
use lowutil::vm::{Event, Vm};

/// The two-point taint domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Taint {
    Tainted,
    Clean,
}

/// Taint propagation state: a shadow of taint bits per local, maintained
/// by the domain itself (the framework handles the dependence edges).
#[derive(Debug, Default)]
struct TaintDomain {
    locals: Vec<Vec<bool>>, // shadow stack of taint bits
    heap: std::collections::HashMap<(lowutil::ir::ObjectId, u32), bool>,
    pending: Vec<bool>,
    ret: bool,
}

impl TaintDomain {
    fn get(&self, l: lowutil::ir::Local) -> bool {
        self.locals
            .last()
            .and_then(|f| f.get(l.index()))
            .copied()
            .unwrap_or(false)
    }

    fn set(&mut self, l: lowutil::ir::Local, t: bool) {
        if let Some(f) = self.locals.last_mut() {
            if f.len() <= l.index() {
                f.resize(l.index() + 1, false);
            }
            f[l.index()] = t;
        }
    }
}

impl AbstractDomain for TaintDomain {
    type Elem = Taint;

    fn classify(&mut self, event: &Event) -> Option<Taint> {
        let wrap = |t: bool| if t { Taint::Tainted } else { Taint::Clean };
        match event {
            Event::Native { dst, args, .. } => {
                // `rand` is the taint source; sinks have no dst.
                let t = true;
                let _ = args;
                if let Some(d) = dst {
                    self.set(*d, t);
                    Some(Taint::Tainted)
                } else {
                    None
                }
            }
            Event::Compute { dst, uses, .. } => {
                let t = uses.iter().flatten().any(|&u| self.get(u));
                self.set(*dst, t);
                Some(wrap(t))
            }
            Event::Alloc { dst, .. } => {
                self.set(*dst, false);
                Some(Taint::Clean)
            }
            Event::StoreField {
                object,
                offset,
                src,
                ..
            } => {
                let t = self.get(*src);
                self.heap.insert((*object, *offset), t);
                Some(wrap(t))
            }
            Event::LoadField {
                dst,
                object,
                offset,
                ..
            } => {
                let t = self.heap.get(&(*object, *offset)).copied().unwrap_or(false);
                self.set(*dst, t);
                Some(wrap(t))
            }
            Event::Call { args, .. } => {
                self.pending = args.iter().map(|&a| self.get(a)).collect();
                None
            }
            Event::Return { src, .. } => {
                self.ret = src.map(|s| self.get(s)).unwrap_or(false);
                None
            }
            Event::CallComplete { dst, .. } => {
                if let Some(d) = dst {
                    let r = self.ret;
                    self.set(*d, r);
                }
                None
            }
            _ => None,
        }
    }

    fn frame_push(&mut self, info: &lowutil::vm::FrameInfo) {
        let mut frame = vec![false; info.num_locals as usize];
        for (i, &t) in self.pending.iter().enumerate() {
            if i < frame.len() {
                frame[i] = t;
            }
        }
        self.pending.clear();
        self.locals.push(frame);
    }

    fn frame_pop(&mut self) {
        self.locals.pop();
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = parse_program(
        r#"
native rand/1 -> value
native print/1
class Config { threshold }
class Audit { entry }
method main/0 {
  cfg = new Config
  fixed = 100
  cfg.threshold = fixed
  # attacker-influenced value
  bound = 1000
  user = native rand(bound)
  two = 2
  scaled = user * two
  audit = new Audit
  audit.entry = scaled
  t = cfg.threshold
  native print(t)
  return
}
"#,
    )?;

    let mut profiler = AbstractProfiler::new(TaintDomain::default());
    Vm::new(&program).run(&mut profiler)?;
    let (graph, _) = profiler.finish();

    println!("tainted heap stores:");
    for (_, n) in graph.iter() {
        if n.kind == NodeKind::HeapStore && n.elem == Taint::Tainted {
            println!("  {}  (x{})", program.instr_label(n.instr), n.freq);
        }
    }
    println!("clean heap stores:");
    for (_, n) in graph.iter() {
        if n.kind == NodeKind::HeapStore && n.elem == Taint::Clean {
            println!("  {}  (x{})", program.instr_label(n.instr), n.freq);
        }
    }
    println!(
        "\ngraph: {} nodes, {} edges — bounded by instructions × 2, not by the trace",
        graph.num_nodes(),
        graph.num_edges()
    );
    Ok(())
}
