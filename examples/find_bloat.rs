//! Find low-utility data structures in a DaCapo-style workload — the
//! paper's main use case.
//!
//! Runs the `chart` benchmark (lists populated with computed points only
//! to take their sizes) and prints the structure ranking; the useless
//! series should dominate the top of the report while the rendered series
//! sinks to the bottom with consumer-level benefit.
//!
//! Run with: `cargo run --example find_bloat`

use lowutil::analyses::cost::CostBenefitConfig;
use lowutil::analyses::dead::dead_value_metrics;
use lowutil::analyses::report::low_utility_report;
use lowutil::analyses::structure::rank_structures;
use lowutil::core::{CostGraphConfig, CostProfiler};
use lowutil::vm::Vm;
use lowutil::workloads::{workload, WorkloadSize};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let w = workload("chart", WorkloadSize::Default);
    println!("workload: {} — {}\n", w.name, w.description);

    let mut profiler = CostProfiler::new(&w.program, CostGraphConfig::default());
    let outcome = Vm::new(&w.program).run(&mut profiler)?;
    let gcost = profiler.finish();

    let cfg = CostBenefitConfig::default();
    let dead = dead_value_metrics(&gcost, outcome.instructions_executed);
    println!(
        "{}",
        low_utility_report(&w.program, &gcost, &cfg, 5, Some(&dead))
    );

    // Sanity: the top-ranked structure must have effectively zero benefit.
    let ranked = rank_structures(&gcost, &cfg);
    let top = &ranked[0];
    println!(
        "top structure imbalance = {:.1} (n-RAC {:.1} vs n-RAB {:.1})",
        top.imbalance(),
        top.n_rac,
        top.n_rab
    );
    Ok(())
}
