//! Quickstart: build a program with the Rust builder API, run it under the
//! cost profiler, and print the low-utility report.
//!
//! The program is the shape of the paper's Figure 3 running example: an
//! expensive computation is stored into an object field, read once, and
//! copied into another structure that nothing consumes.
//!
//! Run with: `cargo run --example quickstart`

use lowutil::analyses::cost::CostBenefitConfig;
use lowutil::analyses::dead::dead_value_metrics;
use lowutil::analyses::report::low_utility_report;
use lowutil::core::{CostGraphConfig, CostProfiler};
use lowutil::ir::{BinOp, CmpOp, ProgramBuilder};
use lowutil::vm::Vm;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // class A { t }  class IntList { cell }
    let mut pb = ProgramBuilder::new();
    let print = pb.native("print", 1, false);
    let a_cls = pb.class("A").finish(&mut pb);
    let t_field = pb.field(a_cls, "t");
    let list_cls = pb.class("IntList").finish(&mut pb);
    let cell_field = pb.field(list_cls, "cell");

    // main() {
    //   a = new A; s = Σ small arithmetic loop; a.t = s;
    //   l = new IntList; l.cell = a.t;      // copied, never consumed
    //   print(1)                            // unrelated live output
    // }
    let mut m = pb.method("main", 0);
    let a = m.new_local("a");
    let l = m.new_local("l");
    let s = m.new_local("s");
    let i = m.new_local("i");
    let one = m.new_local("one");
    let lim = m.new_local("lim");
    let tmp = m.new_local("tmp");
    let live = m.new_local("live");

    m.new_obj(a, a_cls);
    m.iconst(s, 0);
    m.iconst(i, 0);
    m.iconst(one, 1);
    m.iconst(lim, 2000);
    let head = m.label();
    let done = m.label();
    m.bind(head);
    m.branch(CmpOp::Ge, i, lim, done);
    m.binop(tmp, BinOp::Mul, i, i);
    m.binop(s, BinOp::Add, s, tmp);
    m.binop(i, BinOp::Add, i, one);
    m.jump(head);
    m.bind(done);
    m.put_field(a, t_field, s);

    m.new_obj(l, list_cls);
    m.get_field(tmp, a, t_field);
    m.put_field(l, cell_field, tmp);

    m.iconst(live, 1);
    m.call_native_void(print, &[live]);
    m.ret_void();
    let main_id = m.finish(&mut pb);
    let program = pb.finish(main_id)?;

    // Run under the profiler.
    let mut profiler = CostProfiler::new(&program, CostGraphConfig::default());
    let outcome = Vm::new(&program).run(&mut profiler)?;
    let gcost = profiler.finish();

    println!(
        "executed {} instructions, allocated {} objects\n",
        outcome.instructions_executed, outcome.objects_allocated
    );
    let dead = dead_value_metrics(&gcost, outcome.instructions_executed);
    let report = low_utility_report(
        &program,
        &gcost,
        &CostBenefitConfig::default(),
        5,
        Some(&dead),
    );
    println!("{report}");
    println!("Both structures rank high: A.t is expensive to form and only");
    println!("copied onward; IntList.cell holds that copy and is never read.");
    Ok(())
}
