//! Null-origin tracking (Figure 2(a) of the paper): when a run fails with
//! a null dereference, report where the null was created and the
//! propagation flow that carried it to the failure point.
//!
//! Run with: `cargo run --example null_origin`

use lowutil::analyses::nullprop::{null_tracking_profiler, trace_null_origin};
use lowutil::ir::parse_program;
use lowutil::vm::Vm;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A null is created in a factory, cached in a registry field, read
    // back in another method, and finally dereferenced.
    let program = parse_program(
        r#"
class Conn { fd }
class Registry { cached }
method lookup/1 {
  # returns null for unknown names (name 7 is unknown)
  seven = 7
  if p0 == seven goto unknown
  c = new Conn
  one = 1
  c.fd = one
  return c
unknown:
  r = null
  return r
}
method main/0 {
  reg = new Registry
  name = 7
  conn = call lookup(name)
  reg.cached = conn
  c2 = reg.cached
  fd = c2.fd
  return
}
"#,
    )?;

    let mut profiler = null_tracking_profiler();
    let trap = Vm::new(&program)
        .run(&mut profiler)
        .expect_err("the program dereferences null");
    println!("trap: {trap}");

    let report = trace_null_origin(&profiler, &trap).expect("null flow recovered");
    println!("null created at : {}", program.instr_label(report.origin));
    println!("dereferenced at : {}", program.instr_label(report.failure));
    println!("propagation flow:");
    for step in &report.flow {
        println!("  {}", program.instr_label(*step));
    }
    Ok(())
}
