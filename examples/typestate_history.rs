//! Typestate-history recording (Figure 2(b) of the paper, after QVM):
//! track a File protocol and, on violation, show the summarized history
//! the programmer inspects.
//!
//! Run with: `cargo run --example typestate_history`

use lowutil::analyses::typestate::{Protocol, TypestateTracer};
use lowutil::ir::parse_program;
use lowutil::vm::Vm;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = parse_program(
        r#"
class File { data }
method File.create/0 {
  return
}
method File.put/1 {
  this.data = p0
  return
}
method File.get/0 {
  r = this.data
  return r
}
method File.close/0 {
  return
}
method main/0 {
  f = new File
  vcall create(f)
  i = 0
  one = 1
  lim = 5
loop:
  if i >= lim goto done
  vcall put(f, i)
  i = i + one
  goto loop
done:
  vcall close(f)
  y = vcall get(f)
  return
}
"#,
    )?;

    // States: u (uninit), oe (open empty), on (open non-empty), c (closed).
    let protocol = Protocol::new("File", ["u", "oe", "on", "c"], 0)
        .transition(0, "create", 1)
        .transition(1, "put", 2)
        .transition(2, "put", 2)
        .transition(2, "get", 2)
        .transition(1, "close", 3)
        .transition(2, "close", 3);
    let states = protocol.states().to_vec();

    let mut tracer = TypestateTracer::new(&program, protocol);
    Vm::new(&program).run(&mut tracer)?;

    for v in tracer.violations() {
        println!(
            "VIOLATION: `{}` called in state `{}` at {}",
            v.method,
            states[v.state],
            program.instr_label(v.at)
        );
        println!("object history (summarized, not one entry per instance):");
        for e in &v.history {
            let to =
                e.to.map(|t| states[t].clone())
                    .unwrap_or_else(|| "⊥ (violation)".into());
            println!(
                "  {:<14} {}  {} -> {}",
                program.instr_label(e.at),
                e.method,
                states[e.from],
                to
            );
        }
    }
    println!(
        "\nabstract graph nodes: {} (bounded by sites × states, not by the {} put() calls)",
        tracer.graph().num_nodes(),
        5
    );
    Ok(())
}
