//! The full diagnosis pipeline on any suite benchmark: structure ranking,
//! dead-value metrics, wasted stores, constant predicates, and method
//! costs — everything a tuner would look at.
//!
//! Run with: `cargo run --example dacapo_report -- [workload] [small|default|large]`
//! (defaults to `derby default`).

use lowutil::analyses::cost::CostBenefitConfig;
use lowutil::analyses::dead::dead_value_metrics;
use lowutil::analyses::extras::{method_self_costs, DeadStoreTracer, PredicateOutcomeTracer};
use lowutil::analyses::report::low_utility_report;
use lowutil::core::{CostGraphConfig, CostProfiler};
use lowutil::vm::Vm;
use lowutil::workloads::{workload, WorkloadSize, NAMES};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "derby".to_string());
    let size = match args.next().as_deref() {
        Some("small") => WorkloadSize::Small,
        Some("large") => WorkloadSize::Large,
        _ => WorkloadSize::Default,
    };
    if !NAMES.contains(&name.as_str()) {
        eprintln!("unknown workload `{name}`; choose one of {NAMES:?}");
        std::process::exit(2);
    }

    let w = workload(&name, size);
    println!("workload: {} — {}\n", w.name, w.description);

    // One run, four tracers: G_cost + dead stores + predicate outcomes.
    let mut cost = CostProfiler::new(&w.program, CostGraphConfig::default());
    let mut stores = DeadStoreTracer::new();
    let mut preds = PredicateOutcomeTracer::new();
    let mut combined = ((&mut cost, &mut stores), &mut preds);
    let outcome = Vm::new(&w.program).run(&mut combined)?;
    let gcost = cost.finish();

    let dead = dead_value_metrics(&gcost, outcome.instructions_executed);
    println!(
        "{}",
        low_utility_report(
            &w.program,
            &gcost,
            &CostBenefitConfig::default(),
            5,
            Some(&dead)
        )
    );

    println!("--- wasted stores (rewritten before read) ---");
    for (at, over, hits) in stores.wasted_stores(8).into_iter().take(5) {
        println!(
            "  {}: {over}/{hits} stores overwritten unread",
            w.program.instr_label(at)
        );
    }

    println!("--- constant predicates (hot, never vary) ---");
    for (at, outcome, hits) in preds.constant_predicates(16).into_iter().take(5) {
        println!(
            "  {}: always {outcome} over {hits} executions",
            w.program.instr_label(at)
        );
    }

    println!("--- hottest methods by attributed instances ---");
    for (mid, cost) in method_self_costs(&gcost, &w.program).into_iter().take(5) {
        let m = w.program.method(mid);
        let label = match m.class() {
            Some(c) => format!("{}.{}", w.program.class(c).name(), m.name()),
            None => m.name().to_string(),
        };
        println!("  {label}: {cost}");
    }
    Ok(())
}
